package dbsp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cost"
)

// StepCost records the native D-BSP cost of one executed superstep:
// τ + h·g(µ·v/2^i) (paper Section 2).
type StepCost struct {
	// Label is the superstep's cluster label i.
	Label int
	// Tau is the maximum local computation time over processors.
	Tau int64
	// H is the degree of the communication h-relation: the maximum
	// over processors of messages sent or received.
	H int
	// Cost is Tau + H·g(µ·v/2^Label).
	Cost float64
}

// Result is the outcome of a native D-BSP run.
type Result struct {
	// Cost is the total D-BSP time T: the sum of superstep costs.
	Cost float64
	// Steps holds the per-superstep breakdown.
	Steps []StepCost
	// Contexts holds the final µ-word context of every processor.
	Contexts [][]Word
	// MaxTau is the maximum single-superstep local computation time, the
	// τ of Theorem 5's statement ("each processor performs local
	// computation for O(τ) time" per superstep).
	MaxTau int64
}

// TotalTau returns Σ_s τ_s, the aggregate local computation term.
func (r *Result) TotalTau() int64 {
	var t int64
	for _, s := range r.Steps {
		t += s.Tau
	}
	return t
}

// CommCost returns Σ_s h_s·g_s, the aggregate communication term.
func (r *Result) CommCost() float64 {
	var c float64
	for _, s := range r.Steps {
		c += s.Cost - float64(s.Tau)
	}
	return c
}

// NewContexts allocates and initialises the contexts of prog: v blocks
// of µ zeroed words with Init applied to each data region, all carved
// from one flat backing slice. Both the native engine and the
// sequential simulators start from this state; the sharded engine uses
// the per-shard variant NewContextsSharded over the same chunked
// allocator, so initial states coincide word for word.
func NewContexts(prog *Program) [][]Word {
	return newContextsChunked(prog, prog.V)
}

// Run executes prog natively on a D-BSP(v, µ, g) machine. Execution
// model: within each superstep the v processor handlers are chunked
// over GOMAXPROCS worker goroutines (contiguous ranges of processor
// ids, not one goroutine per processor), a barrier joins the workers,
// and message delivery happens sequentially at the superstep boundary.
// It returns the final contexts and the exact model cost. For large v,
// RunSharded runs the same semantics over per-shard arenas with a
// parallel two-phase delivery exchange.
func Run(prog *Program, g cost.Func) (*Result, error) {
	return runHooked(prog, g, nil)
}

// runStepHooked executes one superstep: handlers in parallel, an
// optional pre-delivery observer, then delivery. verify controls the
// engine-side Transpose declaration check; RunInspected disables it so
// an inspector sees declaration violations instead of an engine error.
func runStepHooked(prog *Program, ctxs [][]Word, st Superstep, collect func(), verify bool, buf *stepBuffers) (StepCost, error) {
	sc := StepCost{Label: st.Label}
	if st.Run == nil {
		return sc, nil // dummy superstep: no computation, no messages
	}
	v := prog.V
	ops, errs := buf.ops, buf.errs
	for p := 0; p < v; p++ {
		ops[p], errs[p] = 0, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > v {
		workers = v
	}
	var wg sync.WaitGroup
	chunk := (v + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > v {
			hi = v
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for p := lo; p < hi; p++ {
				runProc(prog, ctxs, st, p, &ops[p], &errs[p])
			}
		}(lo, hi)
	}
	wg.Wait()

	for p, err := range errs {
		if err != nil {
			return sc, fmt.Errorf("processor %d: %w", p, err)
		}
	}
	for _, o := range ops {
		if o > sc.Tau {
			sc.Tau = o
		}
	}
	if verify && st.Transpose != nil {
		if err := verifyTranspose(prog, ctxs, st); err != nil {
			return sc, err
		}
	}
	if collect != nil {
		collect()
	}
	h, err := deliverInto(prog.Layout, ctxs, buf.received)
	if err != nil {
		return sc, err
	}
	sc.H = h
	return sc, nil
}

// stepBuffers holds the per-superstep scratch slices of one engine run.
// The loop reuses them across supersteps instead of reallocating three
// slices per superstep, which dominated the engine's allocation profile
// on small programs.
type stepBuffers struct {
	ops      []int64
	errs     []error
	received []int
}

func newStepBuffers(v int) *stepBuffers {
	return &stepBuffers{
		ops:      make([]int64, v),
		errs:     make([]error, v),
		received: make([]int, v),
	}
}

// verifyTranspose checks a Superstep.Transpose declaration against the
// outboxes the handlers actually produced: exactly one message per
// processor, to the declared destination.
func verifyTranspose(prog *Program, ctxs [][]Word, st Superstep) error {
	l := prog.Layout
	cs := ClusterSize(prog.V, st.Label)
	tr := st.Transpose
	if tr.M1*tr.M2 != cs {
		return fmt.Errorf("transpose declaration %dx%d does not match cluster size %d", tr.M1, tr.M2, cs)
	}
	for p, ctx := range ctxs {
		if n := int(ctx[l.OutCountOff()]); n != 1 {
			return fmt.Errorf("transpose superstep: processor %d sent %d messages, want 1", p, n)
		}
		lo := (p / cs) * cs
		want := lo + tr.Dest(p-lo)
		if got := int(ctx[l.OutboxOff(0)]); got != want {
			return fmt.Errorf("transpose superstep: processor %d sent to %d, want %d", p, got, want)
		}
	}
	return nil
}

// runProc executes the handler for one processor, translating model
// violations (which Ctx reports by panicking) into errors.
func runProc(prog *Program, ctxs [][]Word, st Superstep, p int, ops *int64, errOut *error) {
	defer func() {
		if r := recover(); r != nil {
			*errOut = fmt.Errorf("handler panic: %v", r)
		}
	}()
	sst := &sliceStore{mem: ctxs[p]}
	c := &Ctx{st: sst, layout: prog.Layout, id: p, v: prog.V, label: st.Label}
	st.Run(c)
	*ops = sst.ops
}

// Deliver moves every queued outbox message into its destination inbox
// and returns the h-relation degree: max over processors of
// max(sent, received). Inboxes are cleared first, messages are
// delivered in ascending sender order (send order preserved within a
// sender), and outboxes are cleared afterwards — the exact discipline
// the sequential simulators replicate so that final states coincide.
func Deliver(l Layout, ctxs [][]Word) (h int, err error) {
	return deliverInto(l, ctxs, make([]int, len(ctxs)))
}

// deliverInto is Deliver with a caller-owned received-count buffer
// (len(ctxs) entries, contents ignored), so the engine loop can reuse
// one across supersteps.
func deliverInto(l Layout, ctxs [][]Word, received []int) (h int, err error) {
	for _, ctx := range ctxs {
		ctx[l.InCountOff()] = 0
	}
	received = received[:len(ctxs)]
	for i := range received {
		received[i] = 0
	}
	for p, ctx := range ctxs {
		sent := int(ctx[l.OutCountOff()])
		if sent > h {
			h = sent
		}
		for k := 0; k < sent; k++ {
			dest := int(ctx[l.OutboxOff(k)])
			payload := ctx[l.OutboxOff(k)+1]
			dctx := ctxs[dest]
			n := int(dctx[l.InCountOff()])
			if n >= l.MaxMsgs {
				return 0, fmt.Errorf("inbox overflow at processor %d (MaxMsgs=%d)", dest, l.MaxMsgs)
			}
			dctx[l.InboxOff(n)] = Word(p)
			dctx[l.InboxOff(n)+1] = payload
			dctx[l.InCountOff()] = Word(n + 1)
			received[dest]++
		}
		ctx[l.OutCountOff()] = 0
	}
	for _, r := range received {
		if r > h {
			h = r
		}
	}
	return h, nil
}
