package dbsp

import "fmt"

// Concat chains programs into one: the supersteps of each run in
// sequence over the same machine and contexts. All programs must agree
// on V and Layout; only the first program's Init is kept (later inputs
// are whatever the previous stage left in the contexts — the point of
// chaining). The D-BSP pipelines of the paper's case studies (e.g. the
// convolution: DFT, pointwise product, inverse DFT) are compositions of
// this kind.
func Concat(name string, progs ...*Program) (*Program, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("dbsp: Concat of nothing")
	}
	out := &Program{
		Name:   name,
		V:      progs[0].V,
		Layout: progs[0].Layout,
		Init:   progs[0].Init,
	}
	for i, p := range progs {
		if p.V != out.V {
			return nil, fmt.Errorf("dbsp: Concat: program %d has V=%d, want %d", i, p.V, out.V)
		}
		if p.Layout != out.Layout {
			return nil, fmt.Errorf("dbsp: Concat: program %d has a different layout", i)
		}
		out.Steps = append(out.Steps, p.Steps...)
	}
	return out, nil
}

// Repeat runs prog's supersteps k times in sequence (k >= 1), keeping
// its Init — the shape of iterative algorithms such as relaxations.
func Repeat(name string, prog *Program, k int) (*Program, error) {
	if k < 1 {
		return nil, fmt.Errorf("dbsp: Repeat with k=%d", k)
	}
	out := &Program{Name: name, V: prog.V, Layout: prog.Layout, Init: prog.Init}
	for i := 0; i < k; i++ {
		out.Steps = append(out.Steps, prog.Steps...)
	}
	return out, nil
}

// LocalStep returns a superstep at the finest label running fn on every
// processor — the glue for Concat pipelines (pointwise transforms,
// format conversions between stages).
func LocalStep(v int, fn func(c *Ctx)) Superstep {
	return Superstep{Label: Log2(v), Run: fn}
}

// Barrier returns a no-op 0-superstep — the global synchronisation
// every program must end with.
func Barrier() Superstep {
	return Superstep{Label: 0, Run: func(c *Ctx) {}}
}
