package dbsp

import (
	"testing"

	"repro/internal/cost"
)

func incProg(v int, by Word) *Program {
	return &Program{
		Name:   "inc",
		V:      v,
		Layout: Layout{Data: 1, MaxMsgs: 1},
		Init:   func(p int, data []Word) { data[0] = Word(p) },
		Steps: []Superstep{
			LocalStep(v, func(c *Ctx) { c.Store(0, c.Load(0)+by) }),
			Barrier(),
		},
	}
}

func TestConcat(t *testing.T) {
	a := incProg(8, 1)
	b := incProg(8, 10) // its Init is dropped; it operates on a's output
	chained, err := Concat("chain", a, b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(chained, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if got := res.Contexts[p][0]; got != Word(p+11) {
			t.Errorf("proc %d = %d, want %d", p, got, p+11)
		}
	}
	if !chained.EndsGlobal() {
		t.Error("chained program lost its global ending")
	}
}

func TestConcatRejectsMismatch(t *testing.T) {
	if _, err := Concat("none"); err == nil {
		t.Error("empty Concat accepted")
	}
	if _, err := Concat("vs", incProg(8, 1), incProg(16, 1)); err == nil {
		t.Error("V mismatch accepted")
	}
	other := incProg(8, 1)
	other.Layout = Layout{Data: 2, MaxMsgs: 1}
	if _, err := Concat("layouts", incProg(8, 1), other); err == nil {
		t.Error("layout mismatch accepted")
	}
}

func TestRepeat(t *testing.T) {
	prog, err := Repeat("thrice", incProg(4, 5), 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		if got := res.Contexts[p][0]; got != Word(p+15) {
			t.Errorf("proc %d = %d, want %d", p, got, p+15)
		}
	}
	if _, err := Repeat("zero", incProg(4, 1), 0); err == nil {
		t.Error("Repeat(0) accepted")
	}
}

func TestBarrierAndLocalStep(t *testing.T) {
	b := Barrier()
	if b.Label != 0 || b.Run == nil {
		t.Error("Barrier malformed")
	}
	ls := LocalStep(16, func(c *Ctx) {})
	if ls.Label != 4 {
		t.Errorf("LocalStep label = %d, want 4", ls.Label)
	}
}
