package dbsp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cost"
	"repro/internal/obs"
)

// The sharded engine executes the same D-BSP semantics as Run while
// scaling to very large v (2^20 processors and beyond): processors are
// lightweight contexts multiplexed over a small number of shards, each
// shard owning a contiguous range of processor ids backed by its own
// arena. Per superstep the engine runs two barriers — handlers, then a
// two-phase shard-to-shard message exchange — and accumulates τ and
// errors shard-locally instead of in per-processor slices.
//
// Bit-identity with the native engine is by construction, not by
// tolerance: τ is a max over per-processor int64 ops (order
// independent), h is a max over per-processor int sent/received counts
// (order independent), errors reduce to the lowest processor id
// (shards own ascending contiguous ranges, so the ascending-shard
// reduction finds the same processor the native ascending-p scan
// does), and the only floating-point arithmetic — the cost fold
// sc.Cost = float64(Tau) + float64(H)·g(µ·v/2^i) accumulated in step
// order — lives in engineLoop, shared verbatim by both engines.
// Engines that agree on every integer therefore agree on every charged
// float64, bit for bit. The five-way differential fuzz test in
// internal/core enforces this.

// ShardCount resolves a requested shard count for a v-processor run:
// values <= 0 select GOMAXPROCS (the default), and the result is
// clamped to [1, v] so shards > v degrades to one processor per shard
// rather than empty shards.
func ShardCount(shards, v int) int {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > v {
		shards = v
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// newContextsChunked allocates the v contexts of prog in arenas of at
// most chunk contexts each and applies Init in ascending processor
// order — the exact initial state NewContexts produces, carved from
// per-chunk backing slices instead of one flat v·µ slab. At v = 2^20 a
// single slab is a multi-hundred-megabyte allocation the Go heap must
// find contiguously; per-shard arenas keep each allocation proportional
// to v/shards.
func newContextsChunked(prog *Program, chunk int) [][]Word {
	mu := prog.Mu()
	v := prog.V
	ctxs := make([][]Word, v)
	for lo := 0; lo < v; lo += chunk {
		hi := min(lo+chunk, v)
		arena := make([]Word, (hi-lo)*mu)
		for p := lo; p < hi; p++ {
			off := (p - lo) * mu
			ctxs[p] = arena[off : off+mu : off+mu]
			if prog.Init != nil {
				prog.Init(p, ctxs[p][:prog.Layout.Data])
			}
		}
	}
	return ctxs
}

// NewContextsSharded allocates and initialises the contexts of prog in
// per-shard arenas: shard s owns the contiguous processor range
// [s·chunk, (s+1)·chunk) and its contexts share one backing slice.
// Word-for-word the same initial state as NewContexts.
func NewContextsSharded(prog *Program, shards int) [][]Word {
	shards = ShardCount(shards, prog.V)
	chunk := (prog.V + shards - 1) / shards
	return newContextsChunked(prog, chunk)
}

// overflow records the first (lowest sender, lowest send index) inbox
// overflow a destination shard observed during delivery.
type overflow struct {
	ok             bool
	src, idx, dest int
}

// shardEngine is the per-run state of a sharded execution: the context
// arenas plus shard-local accumulators reused across supersteps. Shard
// s owns processors [s·chunk, min((s+1)·chunk, v)).
type shardEngine struct {
	prog   *Program
	ctxs   [][]Word
	chunk  int // processors per shard (last shard may be short)
	shards int // effective shard count: ceil(V/chunk)

	// Handler-phase accumulators, one entry per shard: the shard's τ
	// (max ops over its processors), its first handler error and the
	// processor that raised it. These replace the native engine's
	// per-processor ops/errs slices — O(shards), not O(v), reduced
	// after the barrier.
	taus     []int64
	errs     []error
	errProcs []int

	// Exchange-phase accumulators, one entry per shard.
	sentMax []int // max messages sent by one of the shard's processors
	recvMax []int // max messages received by one of the shard's processors
	ovf     []overflow

	// out[s][d] is shard s's outgoing bucket for destination shard d:
	// flat (src, idx, dest, payload) records in ascending (src, idx)
	// order, reused across supersteps via [:0]. idx is the message's
	// send index within its sender's outbox — with src it ranks
	// messages in the native engine's global delivery-scan order, which
	// is what makes cross-shard overflow reporting exact.
	out [][][]Word
}

func newShardEngine(prog *Program, shards int) *shardEngine {
	shards = ShardCount(shards, prog.V)
	chunk := (prog.V + shards - 1) / shards
	shards = (prog.V + chunk - 1) / chunk // drop shards the rounding left empty
	e := &shardEngine{
		prog:     prog,
		ctxs:     newContextsChunked(prog, chunk),
		chunk:    chunk,
		shards:   shards,
		taus:     make([]int64, shards),
		errs:     make([]error, shards),
		errProcs: make([]int, shards),
		sentMax:  make([]int, shards),
		recvMax:  make([]int, shards),
		ovf:      make([]overflow, shards),
		out:      make([][][]Word, shards),
	}
	for s := range e.out {
		e.out[s] = make([][]Word, shards)
	}
	return e
}

// span returns shard s's processor range [lo, hi).
func (e *shardEngine) span(s int) (lo, hi int) {
	lo = s * e.chunk
	hi = min(lo+e.chunk, e.prog.V)
	return lo, hi
}

// parallel runs fn once per shard and barriers. One shard runs inline
// — the sharded engine at shards=1 is a sequential loop with zero
// goroutine overhead.
func (e *shardEngine) parallel(fn func(s int)) {
	if e.shards == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < e.shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			fn(s)
		}(s)
	}
	wg.Wait()
}

// runStep executes one superstep: handlers in parallel over shards,
// the optional Transpose verification and pre-delivery observer, then
// the two-phase exchange. The stepFunc of the sharded engine.
func (e *shardEngine) runStep(st Superstep, collect func(), verify bool) (StepCost, error) {
	sc := StepCost{Label: st.Label}
	if st.Run == nil {
		return sc, nil // dummy superstep: no computation, no messages
	}

	// Phase 1: handlers. Each shard walks its processors in ascending
	// order, folding ops into a shard-local max and keeping only the
	// first error — the hot loop touches no shared slice.
	e.parallel(func(s int) {
		lo, hi := e.span(s)
		var tau int64
		e.errs[s] = nil
		for p := lo; p < hi; p++ {
			var ops int64
			var err error
			runProc(e.prog, e.ctxs, st, p, &ops, &err)
			if err != nil {
				e.errs[s], e.errProcs[s] = err, p
				return
			}
			tau = max(tau, ops)
		}
		e.taus[s] = tau
	})
	for s := 0; s < e.shards; s++ {
		if err := e.errs[s]; err != nil {
			// Ascending shards own ascending processor ranges, so the
			// first erroring shard holds the lowest erroring processor
			// — the same one the native engine's ascending-p scan
			// reports.
			return sc, fmt.Errorf("processor %d: %w", e.errProcs[s], err)
		}
		sc.Tau = max(sc.Tau, e.taus[s])
	}

	if verify && st.Transpose != nil {
		if err := verifyTranspose(e.prog, e.ctxs, st); err != nil {
			return sc, err
		}
	}
	if collect != nil {
		collect()
	}

	h, err := e.exchange()
	if err != nil {
		return sc, err
	}
	sc.H = h
	return sc, nil
}

// exchange is the two-phase shard-to-shard delivery. Phase A: every
// shard clears its own inbox counts, drains its own outboxes into
// per-destination-shard buckets and clears the outbox counts. Phase B:
// every shard appends its incoming buckets — ascending source shard,
// which restores the native engine's global ascending-(sender, send
// index) delivery order restricted to this shard — into its own
// inboxes. Each phase writes only shard-owned state, so both
// parallelise freely; the barrier between them is the only
// synchronisation. h and the overflow report reduce afterwards to
// exactly the native Deliver results (see the bit-identity argument at
// the top of the file).
func (e *shardEngine) exchange() (h int, err error) {
	e.parallel(e.collectShard)
	e.parallel(e.deliverShard)
	for s := 0; s < e.shards; s++ {
		h = max(h, e.sentMax[s], e.recvMax[s])
	}
	first := overflow{}
	for s := 0; s < e.shards; s++ {
		o := e.ovf[s]
		if !o.ok {
			continue
		}
		if !first.ok || o.src < first.src || (o.src == first.src && o.idx < first.idx) {
			first = o
		}
	}
	if first.ok {
		// Whether a message overflows depends only on how many earlier
		// messages (in the global scan order) target the same
		// processor — never on messages to other processors — so the
		// minimal-(src, idx) overflow across shards is precisely the
		// one the native sequential scan hits first.
		return 0, fmt.Errorf("inbox overflow at processor %d (MaxMsgs=%d)", first.dest, e.prog.Layout.MaxMsgs)
	}
	return h, nil
}

// collectShard is exchange phase A for shard s: reset the shard's
// inbox counts (inboxes are written only in phase B, after the
// barrier), bucket its outgoing messages by destination shard and
// clear its outbox counts.
func (e *shardEngine) collectShard(s int) {
	l := e.prog.Layout
	lo, hi := e.span(s)
	buckets := e.out[s]
	for d := range buckets {
		buckets[d] = buckets[d][:0]
	}
	maxSent := 0
	for p := lo; p < hi; p++ {
		ctx := e.ctxs[p]
		ctx[l.InCountOff()] = 0
		sent := int(ctx[l.OutCountOff()])
		maxSent = max(maxSent, sent)
		for k := 0; k < sent; k++ {
			dest := int(ctx[l.OutboxOff(k)])
			payload := ctx[l.OutboxOff(k)+1]
			d := dest / e.chunk
			buckets[d] = append(buckets[d], Word(p), Word(k), Word(dest), payload)
		}
		ctx[l.OutCountOff()] = 0
	}
	e.sentMax[s] = maxSent
}

// deliverShard is exchange phase B for shard d: append every incoming
// bucket into the shard's inboxes. Source shards are walked in
// ascending order and each bucket is already in ascending (src, idx)
// order, so the concatenated stream is sorted by (src, idx) — the
// native delivery order restricted to this shard's processors. On the
// first overflow the shard records the offender and stops; the
// cross-shard reduction in exchange picks the global first.
func (e *shardEngine) deliverShard(d int) {
	l := e.prog.Layout
	e.ovf[d] = overflow{}
	for s := 0; s < e.shards; s++ {
		rec := e.out[s][d]
		for i := 0; i < len(rec); i += 4 {
			dest := int(rec[i+2])
			dctx := e.ctxs[dest]
			n := int(dctx[l.InCountOff()])
			if n >= l.MaxMsgs {
				e.ovf[d] = overflow{ok: true, src: int(rec[i]), idx: int(rec[i+1]), dest: dest}
				e.recvMax[d] = 0
				return
			}
			dctx[l.InboxOff(n)] = rec[i]
			dctx[l.InboxOff(n)+1] = rec[i+3]
			dctx[l.InCountOff()] = Word(n + 1)
		}
	}
	maxRecv := 0
	lo, hi := e.span(d)
	for p := lo; p < hi; p++ {
		maxRecv = max(maxRecv, int(e.ctxs[p][l.InCountOff()]))
	}
	e.recvMax[d] = maxRecv
}

// RunSharded executes prog on the sharded engine with the given shard
// count (<= 0 selects GOMAXPROCS; counts above v clamp to v). The
// result — final contexts, per-step costs, total cost, error text — is
// bit-identical to Run's; only the execution strategy differs. See the
// package-level engine comparison on Run.
func RunSharded(prog *Program, g cost.Func, shards int) (*Result, error) {
	return runShardedLoop(prog, g, shards, nil, nil)
}

// runShardedLoop is the sharded engine's loop, sharing engineLoop (and
// therefore the entire cost fold and hook surface) with the native
// engine.
func runShardedLoop(prog *Program, g cost.Func, shards int,
	pre func(step, label int, msgs []MessageTrace),
	post func(step int, st Superstep, ctxs [][]Word)) (*Result, error) {
	return engineLoop(prog, g, func() ([][]Word, stepFunc) {
		e := newShardEngine(prog, shards)
		return e.ctxs, e.runStep
	}, pre, post)
}

// RunShardedObserved is RunObserved on the sharded engine: it records
// the full message trace and, when o is non-nil, publishes the run's
// accounting. Note the trace snapshot is O(messages) per superstep —
// at very large v prefer RunSharded unless the trace is needed.
func RunShardedObserved(prog *Program, g cost.Func, shards int, o *obs.Observer) (*Result, *Trace, error) {
	return RunShardedInspected(prog, g, shards, o, nil)
}

// RunShardedInspected is RunInspected on the sharded engine: the same
// StepEvent stream, observer accounting and disabled engine-side
// Transpose verification, produced by the sharded execution strategy.
func RunShardedInspected(prog *Program, g cost.Func, shards int, o *obs.Observer, inspect func(StepEvent)) (*Result, *Trace, error) {
	loop := func(prog *Program, g cost.Func,
		pre func(step, label int, msgs []MessageTrace),
		post func(step int, st Superstep, ctxs [][]Word)) (*Result, error) {
		return runShardedLoop(prog, g, shards, pre, post)
	}
	return runInspectedLoop(prog, loop, g, o, inspect)
}
