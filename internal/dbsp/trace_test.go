package dbsp

import (
	"strings"
	"testing"

	"repro/internal/cost"
)

// pairProg: neighbours exchange within 2-clusters, then a global rotate.
func pairProg(v int) *Program {
	logv := Log2(v)
	return &Program{
		Name:   "trace-pair",
		V:      v,
		Layout: Layout{Data: 1, MaxMsgs: 1},
		Init:   func(p int, data []Word) { data[0] = Word(p) },
		Steps: []Superstep{
			{Label: logv - 1, Run: func(c *Ctx) { c.Send(c.ID()^1, c.Load(0)) }},
			{Label: 0, Run: func(c *Ctx) { c.Send((c.ID()+c.V()/2)%c.V(), c.Load(0)) }},
			{Label: 0, Run: func(c *Ctx) {}},
		},
	}
}

func TestRunTracedMatchesRun(t *testing.T) {
	prog := pairProg(16)
	plain, err := Run(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	traced, tr, err := RunTraced(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Cost != plain.Cost {
		t.Errorf("traced cost %g != plain %g", traced.Cost, plain.Cost)
	}
	for p := range plain.Contexts {
		for i := range plain.Contexts[p] {
			if plain.Contexts[p][i] != traced.Contexts[p][i] {
				t.Fatal("traced run changed results")
			}
		}
	}
	if tr.Messages() != 32 {
		t.Errorf("Messages = %d, want 32 (16 + 16)", tr.Messages())
	}
}

func TestLocalityLevel(t *testing.T) {
	if got := LocalityLevel(16, 5, 5); got != 4 {
		t.Errorf("same proc level = %d, want log v", got)
	}
	if got := LocalityLevel(16, 0, 1); got != 3 {
		t.Errorf("neighbours = %d, want 3", got)
	}
	if got := LocalityLevel(16, 0, 15); got != 0 {
		t.Errorf("opposite halves = %d, want 0", got)
	}
	if got := LocalityLevel(16, 4, 7); got != 2 {
		t.Errorf("same quad = %d, want 2", got)
	}
}

func TestLocalityHistogramAndSlack(t *testing.T) {
	v := 16
	prog := pairProg(v)
	_, tr, err := RunTraced(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	hist := tr.LocalityHistogram()
	// Step 1: 16 messages between XOR-1 neighbours: level log v -1 = 3.
	if hist[3] != 16 {
		t.Errorf("hist[3] = %d, want 16", hist[3])
	}
	// Step 2: 16 messages across half the machine: level 0.
	if hist[0] != 16 {
		t.Errorf("hist[0] = %d, want 16", hist[0])
	}
	// Slack: step 1 declared label 3 = exact (slack 0); step 2 label 0 =
	// exact. Average slack 0.
	if s := tr.Slack(); s != 0 {
		t.Errorf("slack = %g, want 0 (labels are tight)", s)
	}
	// A sloppy variant: declaring everything at label 0 leaves slack.
	sloppy := pairProg(v)
	sloppy.Steps[0].Label = 0
	_, tr2, err := RunTraced(sloppy, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if s := tr2.Slack(); s != 1.5 {
		t.Errorf("sloppy slack = %g, want 1.5 (16 messages with slack 3, 16 with 0)", s)
	}
}

func TestFormatHistogram(t *testing.T) {
	_, tr, err := RunTraced(pairProg(8), cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	out := tr.FormatHistogram()
	if !strings.Contains(out, "level") || !strings.Contains(out, "#") {
		t.Errorf("histogram rendering incomplete:\n%s", out)
	}
}

func TestTraceEmptyProgram(t *testing.T) {
	prog := &Program{Name: "empty-trace", V: 4, Layout: Layout{Data: 1},
		Steps: []Superstep{{Label: 0, Run: func(c *Ctx) {}}}}
	_, tr, err := RunTraced(prog, cost.Log{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Messages() != 0 || tr.Slack() != 0 {
		t.Error("empty trace not empty")
	}
}
