package dbsp

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/obs"
)

// MessageTrace records one routed message.
type MessageTrace struct {
	Src, Dest int
	Payload   Word
}

// StepTrace records one executed superstep's traffic.
type StepTrace struct {
	// Index and Label identify the superstep.
	Index, Label int
	// Messages lists every message routed at the superstep boundary, in
	// delivery order.
	Messages []MessageTrace
}

// Trace is the communication record of a native run, the raw material
// for locality analysis: how far (in cluster levels) each message
// actually travelled, independent of the labels the program declared.
type Trace struct {
	V     int
	Steps []StepTrace
}

// RunTraced executes prog like Run while recording every routed
// message.
func RunTraced(prog *Program, g cost.Func) (*Result, *Trace, error) {
	return RunObserved(prog, g, nil)
}

// RunObserved executes prog like Run while recording every routed
// message and, when o is non-nil, publishing the run's accounting to
// the observability layer: the per-label superstep histogram
// (dbsp.lambda.label.<i> — the λ_i of the Theorem 5/12 formulas),
// message volume, h-relation degrees, the computation/communication
// cost split, and one "superstep" trace event per executed superstep.
func RunObserved(prog *Program, g cost.Func, o *obs.Observer) (*Result, *Trace, error) {
	return RunInspected(prog, g, o, nil)
}

// costPhases is the declared cost partition of a native run: the
// top-level dbsp.cost.<phase> counters sum to dbsp.cost.total. The
// observe test sums this list against the total and the obspartition
// analyzer cross-checks it against the charges in publishRun.
var costPhases = []string{"compute", "comm"}

// publishRun copies a finished native run's accounting into the
// registry and emits per-superstep events. Totals are copied verbatim
// (dbsp.cost.total is exactly Result.Cost).
func publishRun(o *obs.Observer, prog *Program, res *Result, tr *Trace) {
	o.Counter("dbsp.supersteps").Add(int64(len(res.Steps)))
	o.FloatCounter("dbsp.cost.compute").Add(float64(res.TotalTau()))
	o.FloatCounter("dbsp.cost.comm").Add(res.CommCost())
	o.FloatCounter("dbsp.cost.total").Add(res.Cost)
	o.Gauge("dbsp.v").Set(int64(prog.V))
	o.Gauge("dbsp.mu").Set(int64(prog.Mu()))
	hHist := o.Histogram("dbsp.h.per.step")
	for i, sc := range res.Steps {
		o.Counter(fmt.Sprintf("dbsp.lambda.label.%d", sc.Label)).Inc()
		hHist.Observe(int64(sc.H))
		o.Emit(obs.Event{Sim: "dbsp", Kind: "superstep", Step: i, Label: sc.Label,
			N: int64(sc.H), Cost: sc.Cost})
	}
	var msgs int64
	msgHist := o.Histogram("dbsp.msgs.per.step")
	for _, st := range tr.Steps {
		msgs += int64(len(st.Messages))
		msgHist.Observe(int64(len(st.Messages)))
	}
	o.Counter("dbsp.messages").Add(msgs)

	// Span-stack attribution: the native cost split folded per superstep
	// label under "dbsp;label.<i>;compute|comm". Off the hot path — the
	// whole fold happens once, after the run.
	if prof := o.Profile().Scope("dbsp"); prof != nil {
		compute := make(map[int]float64)
		comm := make(map[int]float64)
		for _, sc := range res.Steps {
			compute[sc.Label] += float64(sc.Tau)
			comm[sc.Label] += sc.Cost - float64(sc.Tau)
		}
		for label := 0; label <= Log2(prog.V); label++ {
			frame := fmt.Sprintf("label.%d", label)
			prof.Add(compute[label], frame, "compute")
			prof.Add(comm[label], frame, "comm")
		}
	}
}

// LocalityLevel returns the label of the finest cluster containing both
// processors: the "distance" a message travels in hierarchy levels
// (log v = same processor, 0 = opposite machine halves).
func LocalityLevel(v, a, b int) int {
	level := Log2(v)
	for level > 0 && !SameCluster(v, level, a, b) {
		level--
	}
	return level
}

// LocalityHistogram counts the trace's messages by the finest common
// cluster level of their endpoints. Index i holds the messages whose
// endpoints share an i-cluster but no finer one.
func (t *Trace) LocalityHistogram() []int64 {
	hist := make([]int64, Log2(t.V)+1)
	for _, st := range t.Steps {
		for _, m := range st.Messages {
			hist[LocalityLevel(t.V, m.Src, m.Dest)]++
		}
	}
	return hist
}

// Slack measures how tightly the program's superstep labels match its
// actual traffic: for every message, the difference between the finest
// common cluster level of its endpoints and the superstep's label
// (0 = the label is exactly as fine as the message allows). The return
// is the message-weighted average slack; large values mean the program
// declares coarser supersteps than its communication requires, leaving
// submachine locality unexposed.
func (t *Trace) Slack() float64 {
	var total, count float64
	for _, st := range t.Steps {
		for _, m := range st.Messages {
			total += float64(LocalityLevel(t.V, m.Src, m.Dest) - st.Label)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / count
}

// Messages returns the total routed message count.
func (t *Trace) Messages() int64 {
	var n int64
	for _, st := range t.Steps {
		n += int64(len(st.Messages))
	}
	return n
}

// FormatHistogram renders the locality histogram as an aligned text
// block with one row per level and a proportional bar.
func (t *Trace) FormatHistogram() string {
	hist := t.LocalityHistogram()
	var max int64 = 1
	for _, h := range hist {
		if h > max {
			max = h
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %10s  (finest common cluster of message endpoints)\n", "level", "messages")
	for i, h := range hist {
		bar := strings.Repeat("#", int(40*h/max))
		fmt.Fprintf(&b, "%6d %10d  %s\n", i, h, bar)
	}
	return b.String()
}

// runHooked is Run with a per-superstep message observer (nil hook =
// plain Run). The hook receives the outbox contents before delivery, in
// the delivery order (ascending sender).
func runHooked(prog *Program, g cost.Func, hook func(step, label int, msgs []MessageTrace)) (*Result, error) {
	return runLoop(prog, g, hook, nil)
}

// stepFunc executes one superstep of a run over the engine's contexts:
// handlers, the engine-side Transpose verification (when verify is
// set), the pre-delivery collect hook, then message delivery. Both the
// native and the sharded engine expose their per-superstep work through
// this signature so one loop — and one hook/inspect surface — drives
// them all.
type stepFunc func(st Superstep, collect func(), verify bool) (StepCost, error)

// runLoop is the native engine's loop: GOMAXPROCS-chunked handler
// execution (runStepHooked) over one flat context arena.
func runLoop(prog *Program, g cost.Func,
	pre func(step, label int, msgs []MessageTrace),
	post func(step int, st Superstep, ctxs [][]Word)) (*Result, error) {
	return engineLoop(prog, g, func() ([][]Word, stepFunc) {
		ctxs := NewContexts(prog)
		buf := newStepBuffers(prog.V)
		return ctxs, func(st Superstep, collect func(), verify bool) (StepCost, error) {
			return runStepHooked(prog, ctxs, st, collect, verify, buf)
		}
	}, pre, post)
}

// engineLoop is the loop shared by every execution engine: pre receives
// each executed superstep's outbox snapshot before delivery, post
// receives the contexts right after delivery (inboxes still hold the
// delivered messages). The engine-side Transpose verification is
// skipped when post is set — an inspector that wants to observe a
// corrupted route end-to-end validates declarations itself. newEngine
// builds the engine state (contexts plus step runner) only after the
// program validates, so Init never runs for a rejected program. The
// cost fold is engine-independent: each step's Tau and H produce
// sc.Cost in step order, so engines that agree on the integers agree on
// every charged float64 bit for bit.
func engineLoop(prog *Program, g cost.Func, newEngine func() ([][]Word, stepFunc),
	pre func(step, label int, msgs []MessageTrace),
	post func(step int, st Superstep, ctxs [][]Word)) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dbsp: nil bandwidth function")
	}
	ctxs, runStep := newEngine()
	res := &Result{Contexts: ctxs}
	for s, st := range prog.Steps {
		var collect func()
		if pre != nil && st.Run != nil {
			step, label := s, st.Label
			collect = func() {
				pre(step, label, collectOutboxes(prog.Layout, ctxs))
			}
		}
		sc, err := runStep(st, collect, post == nil)
		if err != nil {
			return nil, fmt.Errorf("dbsp: program %q superstep %d: %w", prog.Name, s, err)
		}
		if post != nil && st.Run != nil {
			post(s, st, ctxs)
		}
		sc.Cost = float64(sc.Tau) + float64(sc.H)*CommCost(g, prog.Mu(), prog.V, st.Label)
		res.Steps = append(res.Steps, sc)
		res.Cost += sc.Cost
		if sc.Tau > res.MaxTau {
			res.MaxTau = sc.Tau
		}
	}
	return res, nil
}

// collectOutboxes snapshots every queued message in delivery order.
func collectOutboxes(l Layout, ctxs [][]Word) []MessageTrace {
	var msgs []MessageTrace
	for p, ctx := range ctxs {
		sent := int(ctx[l.OutCountOff()])
		for k := 0; k < sent; k++ {
			msgs = append(msgs, MessageTrace{
				Src:     p,
				Dest:    int(ctx[l.OutboxOff(k)]),
				Payload: ctx[l.OutboxOff(k)+1],
			})
		}
	}
	return msgs
}
