package dbsp

import (
	"fmt"
	"strings"

	"repro/internal/cost"
)

// MessageTrace records one routed message.
type MessageTrace struct {
	Src, Dest int
	Payload   Word
}

// StepTrace records one executed superstep's traffic.
type StepTrace struct {
	// Index and Label identify the superstep.
	Index, Label int
	// Messages lists every message routed at the superstep boundary, in
	// delivery order.
	Messages []MessageTrace
}

// Trace is the communication record of a native run, the raw material
// for locality analysis: how far (in cluster levels) each message
// actually travelled, independent of the labels the program declared.
type Trace struct {
	V     int
	Steps []StepTrace
}

// RunTraced executes prog like Run while recording every routed
// message.
func RunTraced(prog *Program, g cost.Func) (*Result, *Trace, error) {
	tr := &Trace{V: prog.V}
	res, err := runHooked(prog, g, func(step, label int, msgs []MessageTrace) {
		tr.Steps = append(tr.Steps, StepTrace{Index: step, Label: label, Messages: msgs})
	})
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}

// LocalityLevel returns the label of the finest cluster containing both
// processors: the "distance" a message travels in hierarchy levels
// (log v = same processor, 0 = opposite machine halves).
func LocalityLevel(v, a, b int) int {
	level := Log2(v)
	for level > 0 && !SameCluster(v, level, a, b) {
		level--
	}
	return level
}

// LocalityHistogram counts the trace's messages by the finest common
// cluster level of their endpoints. Index i holds the messages whose
// endpoints share an i-cluster but no finer one.
func (t *Trace) LocalityHistogram() []int64 {
	hist := make([]int64, Log2(t.V)+1)
	for _, st := range t.Steps {
		for _, m := range st.Messages {
			hist[LocalityLevel(t.V, m.Src, m.Dest)]++
		}
	}
	return hist
}

// Slack measures how tightly the program's superstep labels match its
// actual traffic: for every message, the difference between the finest
// common cluster level of its endpoints and the superstep's label
// (0 = the label is exactly as fine as the message allows). The return
// is the message-weighted average slack; large values mean the program
// declares coarser supersteps than its communication requires, leaving
// submachine locality unexposed.
func (t *Trace) Slack() float64 {
	var total, count float64
	for _, st := range t.Steps {
		for _, m := range st.Messages {
			total += float64(LocalityLevel(t.V, m.Src, m.Dest) - st.Label)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / count
}

// Messages returns the total routed message count.
func (t *Trace) Messages() int64 {
	var n int64
	for _, st := range t.Steps {
		n += int64(len(st.Messages))
	}
	return n
}

// FormatHistogram renders the locality histogram as an aligned text
// block with one row per level and a proportional bar.
func (t *Trace) FormatHistogram() string {
	hist := t.LocalityHistogram()
	var max int64 = 1
	for _, h := range hist {
		if h > max {
			max = h
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %10s  (finest common cluster of message endpoints)\n", "level", "messages")
	for i, h := range hist {
		bar := strings.Repeat("#", int(40*h/max))
		fmt.Fprintf(&b, "%6d %10d  %s\n", i, h, bar)
	}
	return b.String()
}

// runHooked is Run with a per-superstep message observer (nil hook =
// plain Run). The hook receives the outbox contents before delivery, in
// the delivery order (ascending sender).
func runHooked(prog *Program, g cost.Func, hook func(step, label int, msgs []MessageTrace)) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("dbsp: nil bandwidth function")
	}
	ctxs := NewContexts(prog)
	res := &Result{Contexts: ctxs}
	for s, st := range prog.Steps {
		var collect func()
		if hook != nil && st.Run != nil {
			step, label := s, st.Label
			collect = func() {
				hook(step, label, collectOutboxes(prog.Layout, ctxs))
			}
		}
		sc, err := runStepHooked(prog, ctxs, st, collect)
		if err != nil {
			return nil, fmt.Errorf("dbsp: program %q superstep %d: %w", prog.Name, s, err)
		}
		sc.Cost = float64(sc.Tau) + float64(sc.H)*CommCost(g, prog.Mu(), prog.V, st.Label)
		res.Steps = append(res.Steps, sc)
		res.Cost += sc.Cost
		if sc.Tau > res.MaxTau {
			res.MaxTau = sc.Tau
		}
	}
	return res, nil
}

// collectOutboxes snapshots every queued message in delivery order.
func collectOutboxes(l Layout, ctxs [][]Word) []MessageTrace {
	var msgs []MessageTrace
	for p, ctx := range ctxs {
		sent := int(ctx[l.OutCountOff()])
		for k := 0; k < sent; k++ {
			msgs = append(msgs, MessageTrace{
				Src:     p,
				Dest:    int(ctx[l.OutboxOff(k)]),
				Payload: ctx[l.OutboxOff(k)+1],
			})
		}
	}
	return msgs
}
