package dbsp

import (
	"sync/atomic"
	"testing"

	"repro/internal/cost"
)

// The native engine runs handlers concurrently; this test hammers it
// with a large machine and many supersteps so `go test -race` can
// catch any sharing bug between processor goroutines, delivery and
// cost accounting.
func TestEngineConcurrencyStress(t *testing.T) {
	v := 512
	logv := Log2(v)
	var handlerRuns int64
	prog := &Program{
		Name:   "stress",
		V:      v,
		Layout: Layout{Data: 4, MaxMsgs: 2},
		Init:   func(p int, data []Word) { data[0] = Word(p) },
	}
	for s := 0; s < 24; s++ {
		label := s % (logv + 1)
		prog.Steps = append(prog.Steps, Superstep{Label: label, Run: func(c *Ctx) {
			atomic.AddInt64(&handlerRuns, 1)
			acc := c.Load(0)
			for k := 0; k < c.NumRecv(); k++ {
				_, payload := c.Recv(k)
				acc += payload
			}
			c.Store(0, acc)
			cs := ClusterSize(c.V(), c.Label())
			lo := (c.ID() / cs) * cs
			c.Send(lo+(c.ID()-lo+1)%cs, acc)
			c.Work(3)
		}})
	}
	prog.Steps = append(prog.Steps, Superstep{Label: 0, Run: func(c *Ctx) {
		atomic.AddInt64(&handlerRuns, 1)
	}})
	res, err := Run(prog, cost.Poly{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&handlerRuns); got != int64(v*25) {
		t.Errorf("handler runs = %d, want %d", got, v*25)
	}
	if res.Cost <= 0 {
		t.Error("no cost accumulated")
	}
	// Determinism under concurrency: run twice, compare.
	res2, err := Run(prog, cost.Poly{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for p := range res.Contexts {
		for i := range res.Contexts[p] {
			if res.Contexts[p][i] != res2.Contexts[p][i] {
				t.Fatalf("nondeterministic result at proc %d word %d", p, i)
			}
		}
	}
}
