package dbsp

import "testing"

// FuzzTransposeRouteDest checks the defining property of a rational
// permutation route: transposing an M1×M2 matrix and then its M2×M1
// inverse is the identity on every cluster-relative position, and the
// destination always stays inside the cluster. The BT simulator's
// riffle routing and the native engine's verification both rely on
// Dest being exactly this bijection.
func FuzzTransposeRouteDest(f *testing.F) {
	f.Add(uint8(2), uint8(4), uint16(0))
	f.Add(uint8(4), uint8(4), uint16(7))
	f.Add(uint8(1), uint8(8), uint16(3))
	f.Add(uint8(63), uint8(63), uint16(4095))
	f.Fuzz(func(t *testing.T, m1Raw, m2Raw uint8, jRaw uint16) {
		m1 := int(m1Raw)%64 + 1
		m2 := int(m2Raw)%64 + 1
		j := int(jRaw) % (m1 * m2)
		tr := &TransposeRoute{M1: m1, M2: m2}
		inv := &TransposeRoute{M1: m2, M2: m1}

		d := tr.Dest(j)
		if d < 0 || d >= m1*m2 {
			t.Fatalf("Dest(%d) = %d outside [0, %d) for %dx%d", j, d, m1*m2, m1, m2)
		}
		if back := inv.Dest(d); back != j {
			t.Fatalf("%dx%d transpose not inverted by %dx%d: j=%d -> %d -> %d",
				m1, m2, m2, m1, j, d, back)
		}
	})
}
