// Package dbsp implements the Decomposable Bulk Synchronous Parallel
// model of De la Torre and Kruskal (paper reference [19]): a collection
// of v = 2^k processors with µ words of local memory each, communicating
// through a router with bandwidth function g(x), and partitioned at
// every level 0 <= i <= log v into 2^i independent i-clusters forming a
// binary decomposition tree.
//
// A D-BSP program is a sequence of labelled supersteps. In an
// i-superstep each processor computes locally and sends messages only
// within its i-cluster; the superstep costs τ + h·g(µ·v/2^i), where τ
// is the maximum local computation time and the messages form an
// h-relation (paper Section 2).
//
// The package provides the machine description, the superstep program
// representation, the processor-context memory layout shared with the
// sequential simulators, and a goroutine-parallel native execution
// engine: one goroutine per processor per superstep, barrier at the
// superstep boundary — the natural Go rendering of bulk synchrony.
package dbsp

import (
	"fmt"
	"math/bits"

	"repro/internal/cost"
)

// Word is the unit of D-BSP local storage, matching the HMM word.
type Word = int64

// Params describes a D-BSP(v, µ, g(x)) machine. Mu is determined by the
// program's context layout, so Params carries V and G.
type Params struct {
	// V is the number of processors; it must be a power of two >= 1.
	V int
	// G is the router bandwidth function g(x): the cost per message of
	// an h-relation within a cluster of aggregate memory x.
	G cost.Func
}

// Validate checks that V is a positive power of two and G is non-nil.
func (p Params) Validate() error {
	if p.V < 1 || p.V&(p.V-1) != 0 {
		return fmt.Errorf("dbsp: V=%d is not a positive power of two", p.V)
	}
	if p.G == nil {
		return fmt.Errorf("dbsp: nil bandwidth function")
	}
	return nil
}

// LogV returns log2(V).
func (p Params) LogV() int { return bits.Len(uint(p.V)) - 1 }

// Log2 returns log2(v) for a power of two v.
func Log2(v int) int { return bits.Len(uint(v)) - 1 }

// ClusterSize returns the number of processors in an i-cluster of a
// v-processor machine: v / 2^i.
func ClusterSize(v, label int) int { return v >> uint(label) }

// ClusterIndex returns j such that processor p belongs to i-cluster
// C^(i)_j: the clusters partition processors into contiguous runs of
// v/2^i, consistent with the binary decomposition tree
// C^(i)_j = C^(i+1)_{2j} ∪ C^(i+1)_{2j+1}.
func ClusterIndex(v, label, p int) int { return p / ClusterSize(v, label) }

// ClusterRange returns the processor interval [lo, hi) of i-cluster j.
func ClusterRange(v, label, j int) (lo, hi int) {
	size := ClusterSize(v, label)
	return j * size, (j + 1) * size
}

// SameCluster reports whether processors p and q lie in the same
// i-cluster.
func SameCluster(v, label, p, q int) bool {
	return ClusterIndex(v, label, p) == ClusterIndex(v, label, q)
}

// CommCost returns the charge per message of an h-relation executed in
// an i-superstep: g(µ·v/2^i), the cost of a "remote access outside the
// aggregate memory of an i-cluster" (paper Section 2).
func CommCost(g cost.Func, mu, v, label int) float64 {
	return g.Cost(int64(mu) * int64(ClusterSize(v, label)))
}
