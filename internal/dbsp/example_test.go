package dbsp_test

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/dbsp"
)

// Example builds and runs a minimal D-BSP program: four processors
// exchange values with their neighbour inside 2-processor clusters.
func Example() {
	prog := &dbsp.Program{
		Name:   "example",
		V:      4,
		Layout: dbsp.Layout{Data: 2, MaxMsgs: 1},
		Init:   func(p int, data []dbsp.Word) { data[0] = dbsp.Word(10 * p) },
		Steps: []dbsp.Superstep{
			{Label: 1, Run: func(c *dbsp.Ctx) {
				c.Send(c.ID()^1, c.Load(0))
			}},
			{Label: 0, Run: func(c *dbsp.Ctx) {
				_, payload := c.Recv(0)
				c.Store(1, payload)
			}},
		},
	}
	res, err := dbsp.Run(prog, cost.Log{})
	if err != nil {
		fmt.Println(err)
		return
	}
	for p := 0; p < 4; p++ {
		fmt.Printf("P%d received %d\n", p, res.Contexts[p][1])
	}
	// Output:
	// P0 received 10
	// P1 received 0
	// P2 received 30
	// P3 received 20
}

// ExampleRunTraced measures how local a program's communication really
// is, independent of its declared labels.
func ExampleRunTraced() {
	prog := &dbsp.Program{
		Name:   "traced",
		V:      8,
		Layout: dbsp.Layout{Data: 1, MaxMsgs: 1},
		Steps: []dbsp.Superstep{
			{Label: 1, Run: func(c *dbsp.Ctx) {
				// Neighbour exchange declared one level coarser than the
				// traffic requires: one level of unexposed locality.
				c.Send(c.ID()^1, 1)
			}},
			{Label: 0, Run: func(c *dbsp.Ctx) {}},
		},
	}
	_, tr, err := dbsp.RunTraced(prog, cost.Log{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("messages: %d, slack: %.0f level(s)\n", tr.Messages(), tr.Slack())
	// Output:
	// messages: 8, slack: 1 level(s)
}
