package dbsp

import (
	"testing"

	"repro/internal/cost"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{V: 8, G: cost.Log{}}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{V: 0, G: cost.Log{}},
		{V: 3, G: cost.Log{}},
		{V: -8, G: cost.Log{}},
		{V: 8, G: nil},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params %+v accepted", i, p)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 1024: 10}
	for v, want := range cases {
		if got := Log2(v); got != want {
			t.Errorf("Log2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestClusterHelpers(t *testing.T) {
	const v = 16
	if got := ClusterSize(v, 0); got != 16 {
		t.Errorf("ClusterSize(16,0) = %d, want 16", got)
	}
	if got := ClusterSize(v, 4); got != 1 {
		t.Errorf("ClusterSize(16,4) = %d, want 1", got)
	}
	if got := ClusterIndex(v, 2, 7); got != 1 {
		t.Errorf("ClusterIndex(16,2,7) = %d, want 1 (procs 4..7)", got)
	}
	lo, hi := ClusterRange(v, 2, 1)
	if lo != 4 || hi != 8 {
		t.Errorf("ClusterRange(16,2,1) = [%d,%d), want [4,8)", lo, hi)
	}
	if !SameCluster(v, 2, 4, 7) || SameCluster(v, 2, 3, 4) {
		t.Error("SameCluster boundary wrong at label 2")
	}
	// Binary decomposition tree: C(i)_j = C(i+1)_{2j} ∪ C(i+1)_{2j+1}.
	for i := 0; i < 4; i++ {
		for j := 0; j < 1<<i; j++ {
			lo, hi := ClusterRange(v, i, j)
			llo, _ := ClusterRange(v, i+1, 2*j)
			_, rhi := ClusterRange(v, i+1, 2*j+1)
			if llo != lo || rhi != hi {
				t.Errorf("decomposition tree broken at level %d cluster %d", i, j)
			}
		}
	}
}

func TestCommCost(t *testing.T) {
	g := cost.Poly{Alpha: 0.5}
	// i-superstep message cost = g(µ v / 2^i): µ=4, v=16, i=2 -> g(16)=4.
	if got := CommCost(g, 4, 16, 2); got != 4 {
		t.Errorf("CommCost = %g, want 4", got)
	}
	// Finer clusters are cheaper.
	if CommCost(g, 4, 16, 4) >= CommCost(g, 4, 16, 0) {
		t.Error("CommCost not decreasing in label")
	}
}
