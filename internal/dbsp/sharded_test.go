package dbsp

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/obs"
)

// shardProg builds a v-processor program whose traffic crosses every
// shard boundary: each superstep a processor folds its inbox into
// data[0] and sends the sum a varying stride ahead within its cluster,
// so messages are a mix of self-sends, intra-shard hops and cross-shard
// hops at every tested shard count.
func shardProg(v, steps int) *Program {
	logv := Log2(v)
	prog := &Program{
		Name:   "shardprog",
		V:      v,
		Layout: Layout{Data: 2, MaxMsgs: 3},
		Init:   func(p int, data []Word) { data[0] = Word(3*p + 1) },
	}
	for s := 0; s < steps; s++ {
		label := (s * 2) % (logv + 1)
		stride := 1 << (s % 4) // includes stride ≡ 0 mod cluster: self-sends
		prog.Steps = append(prog.Steps, Superstep{Label: label, Run: func(c *Ctx) {
			acc := c.Load(0)
			for k := 0; k < c.NumRecv(); k++ {
				src, payload := c.Recv(k)
				acc += payload + Word(src)
			}
			c.Store(0, acc)
			cs := ClusterSize(c.V(), c.Label())
			lo := (c.ID() / cs) * cs
			c.Send(lo+(c.ID()-lo+stride)%cs, acc)
			c.Work(int64(c.ID() % 5))
		}})
	}
	prog.Steps = append(prog.Steps, Superstep{Label: 0, Run: func(c *Ctx) {
		acc := c.Load(0)
		for k := 0; k < c.NumRecv(); k++ {
			_, payload := c.Recv(k)
			acc += payload
		}
		c.Store(1, acc)
	}})
	return prog
}

// requireIdentical asserts two results agree bit-for-bit: contexts word
// by word, per-step integer costs, and every charged float64 compared
// by Float64bits, not tolerance.
func requireIdentical(t *testing.T, native, sharded *Result) {
	t.Helper()
	if len(native.Steps) != len(sharded.Steps) {
		t.Fatalf("step counts differ: native %d, sharded %d", len(native.Steps), len(sharded.Steps))
	}
	for i := range native.Steps {
		n, s := native.Steps[i], sharded.Steps[i]
		if n.Label != s.Label || n.Tau != s.Tau || n.H != s.H {
			t.Fatalf("step %d: native {label %d τ %d h %d}, sharded {label %d τ %d h %d}",
				i, n.Label, n.Tau, n.H, s.Label, s.Tau, s.H)
		}
		if math.Float64bits(n.Cost) != math.Float64bits(s.Cost) {
			t.Fatalf("step %d cost bits differ: native %x, sharded %x",
				i, math.Float64bits(n.Cost), math.Float64bits(s.Cost))
		}
	}
	if math.Float64bits(native.Cost) != math.Float64bits(sharded.Cost) {
		t.Fatalf("total cost bits differ: native %x, sharded %x",
			math.Float64bits(native.Cost), math.Float64bits(sharded.Cost))
	}
	if native.MaxTau != sharded.MaxTau {
		t.Fatalf("MaxTau differs: native %d, sharded %d", native.MaxTau, sharded.MaxTau)
	}
	if len(native.Contexts) != len(sharded.Contexts) {
		t.Fatalf("context counts differ: %d vs %d", len(native.Contexts), len(sharded.Contexts))
	}
	for p := range native.Contexts {
		for i := range native.Contexts[p] {
			if native.Contexts[p][i] != sharded.Contexts[p][i] {
				t.Fatalf("proc %d word %d: native %d, sharded %d",
					p, i, native.Contexts[p][i], sharded.Contexts[p][i])
			}
		}
	}
}

// TestRunShardedMatchesNative sweeps shard counts — 1, a divisor of v,
// a non-divisor (uneven last shard), v itself, shards > v, and the
// GOMAXPROCS default — and requires bit-identical agreement with the
// native engine on a program whose sends cross shard boundaries.
func TestRunShardedMatchesNative(t *testing.T) {
	for _, v := range []int{1, 2, 8, 64, 128} {
		prog := shardProg(v, 9)
		native, err := Run(prog, cost.Poly{Alpha: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 3, 7, v, v + 13, 0} {
			sharded, err := RunSharded(prog, cost.Poly{Alpha: 0.5}, shards)
			if err != nil {
				t.Fatalf("v=%d shards=%d: %v", v, shards, err)
			}
			requireIdentical(t, native, sharded)
		}
	}
}

// TestShardCount pins the resolution rules: <= 0 is the GOMAXPROCS
// default, counts clamp to [1, v].
func TestShardCount(t *testing.T) {
	if got := ShardCount(4, 100); got != 4 {
		t.Errorf("ShardCount(4, 100) = %d, want 4", got)
	}
	if got := ShardCount(200, 100); got != 100 {
		t.Errorf("ShardCount(200, 100) = %d, want clamp to 100", got)
	}
	if got := ShardCount(0, 100); got < 1 || got > 100 {
		t.Errorf("ShardCount(0, 100) = %d, want in [1, 100]", got)
	}
	if got := ShardCount(-3, 1); got != 1 {
		t.Errorf("ShardCount(-3, 1) = %d, want 1", got)
	}
}

// TestNewContextsShardedMatchesFlat: the per-shard arenas must hold the
// word-for-word initial state of the flat allocator, including an
// uneven final shard.
func TestNewContextsShardedMatchesFlat(t *testing.T) {
	prog := shardProg(64, 1)
	flat := NewContexts(prog)
	for _, shards := range []int{1, 5, 64, 200} {
		got := NewContextsSharded(prog, shards)
		if len(got) != len(flat) {
			t.Fatalf("shards=%d: %d contexts, want %d", shards, len(got), len(flat))
		}
		for p := range flat {
			if len(got[p]) != len(flat[p]) {
				t.Fatalf("shards=%d proc %d: µ=%d, want %d", shards, p, len(got[p]), len(flat[p]))
			}
			for i := range flat[p] {
				if got[p][i] != flat[p][i] {
					t.Fatalf("shards=%d proc %d word %d: %d, want %d", shards, p, i, got[p][i], flat[p][i])
				}
			}
		}
	}
}

// TestShardedSelfSends: a superstep where every processor sends only to
// itself never crosses a shard boundary; the exchange must still clear
// outboxes, fill inboxes and report h = 1.
func TestShardedSelfSends(t *testing.T) {
	prog := &Program{
		Name:   "selfsend",
		V:      16,
		Layout: Layout{Data: 1, MaxMsgs: 2},
		Init:   func(p int, data []Word) { data[0] = Word(p) },
		Steps: []Superstep{
			{Label: Log2(16), Run: func(c *Ctx) { c.Send(c.ID(), c.Load(0)*2) }},
			{Label: 0, Run: func(c *Ctx) {
				if c.NumRecv() != 1 {
					panic("self-send not delivered")
				}
				src, payload := c.Recv(0)
				if src != c.ID() {
					panic("self-send delivered with wrong source")
				}
				c.Store(0, payload)
			}},
		},
	}
	for _, shards := range []int{1, 3, 16} {
		res, err := RunSharded(prog, cost.Log{}, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Steps[0].H != 1 {
			t.Errorf("shards=%d: h = %d for self-send superstep, want 1", shards, res.Steps[0].H)
		}
		for p, ctx := range res.Contexts {
			if ctx[0] != Word(2*p) {
				t.Errorf("shards=%d proc %d: data[0] = %d, want %d", shards, p, ctx[0], 2*p)
			}
		}
	}
}

// TestShardedZeroMessageSuperstep: supersteps that send nothing must
// clear stale inboxes and charge h = 0, exactly like native delivery.
func TestShardedZeroMessageSuperstep(t *testing.T) {
	prog := &Program{
		Name:   "quiet",
		V:      8,
		Layout: Layout{Data: 1, MaxMsgs: 2},
		Steps: []Superstep{
			{Label: 0, Run: func(c *Ctx) { c.Send((c.ID()+1)%c.V(), 7) }},
			{Label: 0, Run: func(c *Ctx) { c.Work(1) }}, // sends nothing
			{Label: 0, Run: func(c *Ctx) {
				if c.NumRecv() != 0 {
					panic("stale inbox survived a zero-message superstep")
				}
			}},
		},
	}
	for _, shards := range []int{1, 3, 8} {
		res, err := RunSharded(prog, cost.Log{}, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.Steps[1].H != 0 || res.Steps[2].H != 0 {
			t.Errorf("shards=%d: h = %d,%d for zero-message supersteps, want 0,0",
				shards, res.Steps[1].H, res.Steps[2].H)
		}
	}
}

// TestShardedCrossShardOverflow overflows an inbox from senders in a
// different shard and checks the error names the overflowing processor
// — and is byte-identical to the native engine's error, whichever
// shard count partitions senders from the victim.
func TestShardedCrossShardOverflow(t *testing.T) {
	v := 16
	prog := &Program{
		Name:   "overflow",
		V:      v,
		Layout: Layout{Data: 1, MaxMsgs: 2},
		Steps: []Superstep{
			{Label: 0, Run: func(c *Ctx) {
				// Processors 12..14 all target processor 3: the third
				// delivery overflows MaxMsgs=2.
				if c.ID() >= 12 && c.ID() <= 14 {
					c.Send(3, Word(c.ID()))
				}
			}},
			{Label: 0, Run: func(c *Ctx) {}},
		},
	}
	_, nativeErr := Run(prog, cost.Log{})
	if nativeErr == nil {
		t.Fatal("native engine accepted an overflowing program")
	}
	if !strings.Contains(nativeErr.Error(), "inbox overflow at processor 3") {
		t.Fatalf("native overflow error %q does not name processor 3", nativeErr)
	}
	for _, shards := range []int{1, 2, 4, 16} {
		_, err := RunSharded(prog, cost.Log{}, shards)
		if err == nil {
			t.Fatalf("shards=%d: overflow not rejected", shards)
		}
		if err.Error() != nativeErr.Error() {
			t.Errorf("shards=%d: error %q, want native's %q", shards, err, nativeErr)
		}
	}
}

// TestShardedOverflowFirstInScanOrder sets up simultaneous overflows at
// two processors in different shards; the reported processor must be
// the one the native sequential scan (ascending sender, send order
// within sender) hits first.
func TestShardedOverflowFirstInScanOrder(t *testing.T) {
	v := 8
	prog := &Program{
		Name:   "doubleoverflow",
		V:      v,
		Layout: Layout{Data: 1, MaxMsgs: 2},
		Steps: []Superstep{
			{Label: 0, Run: func(c *Ctx) {
				// Proc 0 fills inbox 6, proc 3 fills inbox 2; procs 1 and
				// 4 then overflow them. Native scan order hits proc 1's
				// message (→ 6) before proc 4's (→ 2), so processor 6 is
				// named even though 2 < 6.
				switch c.ID() {
				case 0:
					c.Send(6, 1)
					c.Send(6, 1)
				case 1:
					c.Send(6, 2)
				case 3:
					c.Send(2, 1)
					c.Send(2, 1)
				case 4:
					c.Send(2, 2)
				}
			}},
			{Label: 0, Run: func(c *Ctx) {}},
		},
	}
	_, nativeErr := Run(prog, cost.Log{})
	if nativeErr == nil || !strings.Contains(nativeErr.Error(), "processor 6") {
		t.Fatalf("native error %v, want overflow at processor 6", nativeErr)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		_, err := RunSharded(prog, cost.Log{}, shards)
		if err == nil || err.Error() != nativeErr.Error() {
			t.Errorf("shards=%d: error %v, want native's %q", shards, err, nativeErr)
		}
	}
}

// TestShardedHandlerErrorLowestProc: when handlers on several shards
// panic, the sharded engine must report the lowest processor id, like
// the native ascending scan.
func TestShardedHandlerErrorLowestProc(t *testing.T) {
	prog := &Program{
		Name:   "panicky",
		V:      32,
		Layout: Layout{Data: 1, MaxMsgs: 1},
		Steps: []Superstep{
			{Label: 0, Run: func(c *Ctx) {
				if c.ID()%5 == 2 { // procs 2, 7, 12, ... panic
					panic("boom")
				}
			}},
			{Label: 0, Run: func(c *Ctx) {}},
		},
	}
	_, nativeErr := Run(prog, cost.Log{})
	if nativeErr == nil || !strings.Contains(nativeErr.Error(), "processor 2:") {
		t.Fatalf("native error %v, want processor 2", nativeErr)
	}
	for _, shards := range []int{1, 4, 32} {
		_, err := RunSharded(prog, cost.Log{}, shards)
		if err == nil || err.Error() != nativeErr.Error() {
			t.Errorf("shards=%d: error %v, want native's %q", shards, err, nativeErr)
		}
	}
}

// TestRunShardedInspected: the sharded engine must expose the same
// trace/StepEvent surface as the native one — identical message traces
// and identical registry accounting.
func TestRunShardedInspected(t *testing.T) {
	prog := shardProg(32, 6)
	nRes, nTr, err := RunObserved(prog, cost.Log{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	o := obs.New(reg, nil)
	var events int
	sRes, sTr, err := RunShardedInspected(prog, cost.Log{}, 3, o, func(e StepEvent) {
		events++
		if len(e.Sent) != len(e.Received) {
			t.Errorf("step %d: %d sent, %d received", e.Step, len(e.Sent), len(e.Received))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, nRes, sRes)
	if events != len(sRes.Steps) {
		t.Errorf("inspector saw %d events, want %d", events, len(sRes.Steps))
	}
	if len(nTr.Steps) != len(sTr.Steps) {
		t.Fatalf("trace step counts differ: %d vs %d", len(nTr.Steps), len(sTr.Steps))
	}
	for i := range nTr.Steps {
		n, s := nTr.Steps[i], sTr.Steps[i]
		if len(n.Messages) != len(s.Messages) {
			t.Fatalf("trace step %d: %d vs %d messages", i, len(n.Messages), len(s.Messages))
		}
		for k := range n.Messages {
			if n.Messages[k] != s.Messages[k] {
				t.Fatalf("trace step %d message %d: native %+v, sharded %+v", i, k, n.Messages[k], s.Messages[k])
			}
		}
	}
	if got, want := reg.FloatCounter("dbsp.cost.total").Value(), sRes.Cost; got != want {
		t.Errorf("dbsp.cost.total = %v, want exactly %v", got, want)
	}
}

// TestShardedConcurrencyStress hammers the sharded engine with many
// shards while a scraper goroutine concurrently snapshots the metrics
// registry — the obs-under-load pattern `go test -race` must clear.
func TestShardedConcurrencyStress(t *testing.T) {
	prog := shardProg(512, 24)
	reg := obs.NewRegistry()
	o := obs.New(reg, obs.NewRingSink(64))

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				reg.Snapshot()
			}
		}
	}()

	res1, _, err := RunShardedObserved(prog, cost.Poly{Alpha: 0.5}, 7, o)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunSharded(prog, cost.Poly{Alpha: 0.5}, 13)
	if err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	requireIdentical(t, res1, res2)
	if got, want := reg.FloatCounter("dbsp.cost.total").Value(), res1.Cost; got != want {
		t.Errorf("dbsp.cost.total = %v, want exactly %v", got, want)
	}
}
