package dbsp

import (
	"fmt"
	"sort"
)

// Superstep is one labelled superstep of a D-BSP program. In a
// superstep with Label = i, every processor executes Run on its own
// context and may send messages within its i-cluster; a barrier
// synchronises each i-cluster at the end.
type Superstep struct {
	// Label is the cluster granularity i, 0 <= i <= log v. Label 0 is
	// the whole machine; label log v is a single processor.
	Label int
	// Run is the per-processor handler. A nil Run denotes a dummy
	// superstep (inserted by smoothing): no computation, no messages,
	// but it still participates in the simulators' cluster schedule.
	Run func(c *Ctx)
	// Transpose, when non-nil, declares that this superstep's
	// communication pattern is exactly a cluster-wide transpose (a
	// rational permutation): see TransposeRoute. The declaration is
	// metadata — handlers still Send normally — but it lets the BT
	// simulator route messages with block-transfer riffles instead of
	// sorting (the improved simulation of the paper's Section 6
	// remark). The native engine verifies the declaration.
	Transpose *TransposeRoute
}

// TransposeRoute declares a superstep's communication as the matrix
// transpose of its clusters: with M1·M2 = cluster size, the processor
// at cluster-relative position j1·M2 + j2 sends exactly one message to
// relative position j2·M1 + j1. Transposes are rational permutations —
// permutations of the address bits — which the BT machine can route in
// O(m·log m) time without sorting.
type TransposeRoute struct {
	// M1 and M2 are the matrix dimensions; M1·M2 must equal the
	// superstep's cluster size.
	M1, M2 int
}

// Dest returns the cluster-relative destination of relative position j.
func (t *TransposeRoute) Dest(j int) int {
	j1, j2 := j/t.M2, j%t.M2
	return j2*t.M1 + j1
}

// Program is a D-BSP program: a machine size, a context layout, an
// optional initial data distribution and a sequence of supersteps.
type Program struct {
	// Name identifies the program in experiment tables.
	Name string
	// V is the number of processors (a power of two).
	V int
	// Layout fixes the context memory layout; Mu() is the µ of the
	// D-BSP(v, µ, g) machine this program runs on.
	Layout Layout
	// Steps is the superstep sequence. The simulation schemes require
	// the last superstep to be a 0-superstep (a global barrier), the
	// standard assumption of paper Section 2.
	Steps []Superstep
	// Init, when non-nil, fills processor p's data region before the
	// first superstep. The input distribution is given, not charged.
	Init func(p int, data []Word)
}

// Mu returns the context size in words.
func (pr *Program) Mu() int { return pr.Layout.Mu() }

// LogV returns log2(V).
func (pr *Program) LogV() int { return Log2(pr.V) }

// Validate checks machine size, layout and superstep labels.
func (pr *Program) Validate() error {
	if pr.V < 1 || pr.V&(pr.V-1) != 0 {
		return fmt.Errorf("dbsp: program %q: V=%d not a positive power of two", pr.Name, pr.V)
	}
	if err := pr.Layout.Validate(); err != nil {
		return fmt.Errorf("dbsp: program %q: %w", pr.Name, err)
	}
	logv := pr.LogV()
	for s, st := range pr.Steps {
		if st.Label < 0 || st.Label > logv {
			return fmt.Errorf("dbsp: program %q: superstep %d has label %d outside [0,%d]",
				pr.Name, s, st.Label, logv)
		}
	}
	return nil
}

// EndsGlobal reports whether the last superstep is a 0-superstep, the
// precondition of the simulation schemes ("it is reasonable to assume
// that any D-BSP computation ends with a global synchronization").
func (pr *Program) EndsGlobal() bool {
	return len(pr.Steps) > 0 && pr.Steps[len(pr.Steps)-1].Label == 0
}

// Labels returns the sorted set of distinct labels used by the program.
func (pr *Program) Labels() []int {
	seen := make(map[int]bool)
	for _, st := range pr.Steps {
		seen[st.Label] = true
	}
	out := make([]int, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// IsSmooth reports whether the program is L-smooth (Definition 3) with
// respect to the given sorted label set L = {l0 < l1 < ... < lm}:
// every superstep label belongs to L, and a superstep of label l_i
// directly following one of label l_j > l_i has i = j-1 (clusters
// coarsen one L-level at a time).
func (pr *Program) IsSmooth(labels []int) bool {
	idx := make(map[int]int, len(labels))
	for k, l := range labels {
		idx[l] = k
	}
	prev := -1 // index in L of the previous superstep's label
	for _, st := range pr.Steps {
		k, ok := idx[st.Label]
		if !ok {
			return false
		}
		if prev >= 0 && k < prev && k != prev-1 {
			return false
		}
		prev = k
	}
	return true
}

// Lambda returns λ_i, the number of supersteps with label i, indexed by
// label (length log v + 1). Dummy supersteps are counted — pass
// real=true to count only supersteps with a non-nil handler.
func (pr *Program) Lambda(realOnly bool) []int {
	lam := make([]int, pr.LogV()+1)
	for _, st := range pr.Steps {
		if realOnly && st.Run == nil {
			continue
		}
		lam[st.Label]++
	}
	return lam
}
