package dbsp

import (
	"strings"
	"testing"
)

// send is a handcrafted outbox entry for deliverCtxs.
type send struct {
	dest    int
	payload Word
}

// deliverCtxs builds v fresh contexts under l and queues each
// processor's sends directly in its outbox, bypassing Ctx so the tests
// exercise Deliver's own discipline in isolation.
func deliverCtxs(t *testing.T, l Layout, v int, sends [][]send) [][]Word {
	t.Helper()
	ctxs := make([][]Word, v)
	for p := range ctxs {
		ctxs[p] = make([]Word, l.Mu())
		if p >= len(sends) {
			continue
		}
		if n := len(sends[p]); n > l.MaxMsgs {
			t.Fatalf("proc %d: %d sends exceed outbox capacity %d", p, n, l.MaxMsgs)
		}
		for k, s := range sends[p] {
			ctxs[p][l.OutboxOff(k)] = Word(s.dest)
			ctxs[p][l.OutboxOff(k)+1] = s.payload
		}
		ctxs[p][l.OutCountOff()] = Word(len(sends[p]))
	}
	return ctxs
}

// inbox reads back processor p's inbox as delivered (src, payload)
// pairs.
func inbox(l Layout, ctxs [][]Word, p int) []send {
	n := int(ctxs[p][l.InCountOff()])
	out := make([]send, n)
	for k := 0; k < n; k++ {
		out[k] = send{int(ctxs[p][l.InboxOff(k)]), ctxs[p][l.InboxOff(k)+1]}
	}
	return out
}

func eqInbox(a, b []send) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDeliverEdgeCases pins the exact h-relation and buffer semantics
// of the superstep boundary: h is the max (not the sum) of per-
// processor sent and received counts, inboxes are filled in ascending
// sender order with send order preserved within a sender, overflow
// trips at exactly MaxMsgs, and a zero-message superstep clears stale
// inboxes.
func TestDeliverEdgeCases(t *testing.T) {
	l := Layout{Data: 1, MaxMsgs: 4}
	cases := []struct {
		name    string
		v       int
		sends   [][]send
		wantH   int
		inboxes map[int][]send // checked per listed processor
	}{
		{
			name: "h is max sent when fan-out dominates",
			v:    4,
			// Proc 0 sends 3 messages to distinct destinations; every
			// receiver gets 1. h = max(3, 1) = 3, not the total 3+0.
			sends: [][]send{{{1, 10}, {2, 20}, {3, 30}}},
			wantH: 3,
			inboxes: map[int][]send{
				0: {},
				1: {{0, 10}},
				2: {{0, 20}},
				3: {{0, 30}},
			},
		},
		{
			name: "h is max received when fan-in dominates",
			v:    4,
			// Three processors each send 1 message to proc 0.
			// h = max(1, 3) = 3, not the sum 3+3.
			sends: [][]send{nil, {{0, 11}}, {{0, 22}}, {{0, 33}}},
			wantH: 3,
			inboxes: map[int][]send{
				0: {{1, 11}, {2, 22}, {3, 33}},
			},
		},
		{
			name: "h never sums sent and received",
			v:    2,
			// A full exchange: each side sends 2 and receives 2.
			// h = max(2, 2) = 2, not 4.
			sends: [][]send{{{1, 1}, {1, 2}}, {{0, 3}, {0, 4}}},
			wantH: 2,
			inboxes: map[int][]send{
				0: {{1, 3}, {1, 4}},
				1: {{0, 1}, {0, 2}},
			},
		},
		{
			name: "ascending sender order, send order kept within sender",
			v:    4,
			// Senders are visited 0,1,2,... regardless of how the queue
			// interleaves, and a sender's own messages keep their send
			// order — proc 3's inbox must read 0,0,1,2 even though proc 2
			// appears before proc 0 in no ordering here.
			sends: [][]send{
				{{3, 100}, {3, 101}},
				{{3, 200}},
				{{3, 300}},
			},
			wantH: 4,
			inboxes: map[int][]send{
				3: {{0, 100}, {0, 101}, {1, 200}, {2, 300}},
			},
		},
		{
			name: "inbox fills to exactly MaxMsgs without overflow",
			v:    3,
			// Proc 0 receives MaxMsgs = 4 messages: full, legal.
			sends: [][]send{nil, {{0, 1}, {0, 2}}, {{0, 3}, {0, 4}}},
			wantH: 4,
			inboxes: map[int][]send{
				0: {{1, 1}, {1, 2}, {2, 3}, {2, 4}},
			},
		},
		{
			name:  "zero-message superstep",
			v:     3,
			sends: nil,
			wantH: 0,
			inboxes: map[int][]send{
				0: {}, 1: {}, 2: {},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctxs := deliverCtxs(t, l, tc.v, tc.sends)
			h, err := Deliver(l, ctxs)
			if err != nil {
				t.Fatalf("Deliver: %v", err)
			}
			if h != tc.wantH {
				t.Errorf("h = %d, want %d", h, tc.wantH)
			}
			for p, want := range tc.inboxes {
				if got := inbox(l, ctxs, p); !eqInbox(got, want) {
					t.Errorf("proc %d inbox = %v, want %v", p, got, want)
				}
			}
			for p := range ctxs {
				if n := ctxs[p][l.OutCountOff()]; n != 0 {
					t.Errorf("proc %d outbox not cleared (count %d)", p, n)
				}
			}
		})
	}
}

// TestDeliverOverflowAtMaxMsgsPlusOne drives one message past the inbox
// capacity and checks the overflow is rejected with the offending
// processor named.
func TestDeliverOverflowAtMaxMsgsPlusOne(t *testing.T) {
	l := Layout{Data: 1, MaxMsgs: 2}
	// Procs 1 and 2 send 2 each to proc 0: the third delivery hits
	// n >= MaxMsgs.
	ctxs := deliverCtxs(t, l, 3, [][]send{nil, {{0, 1}, {0, 2}}, {{0, 3}, {0, 4}}})
	_, err := Deliver(l, ctxs)
	if err == nil {
		t.Fatal("overflow at MaxMsgs+1 not rejected")
	}
	if !strings.Contains(err.Error(), "processor 0") || !strings.Contains(err.Error(), "MaxMsgs=2") {
		t.Errorf("overflow error %q does not name processor and capacity", err)
	}
}

// TestDeliverClearsStaleInbox pre-loads an inbox as a previous
// superstep would have left it and checks a delivery round with no
// messages wipes it: handlers must never observe last round's traffic.
func TestDeliverClearsStaleInbox(t *testing.T) {
	l := Layout{Data: 1, MaxMsgs: 3}
	ctxs := deliverCtxs(t, l, 2, nil)
	ctxs[1][l.InCountOff()] = 2
	ctxs[1][l.InboxOff(0)] = 0
	ctxs[1][l.InboxOff(0)+1] = 99
	h, err := Deliver(l, ctxs)
	if err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	if h != 0 {
		t.Errorf("h = %d for zero-message superstep, want 0", h)
	}
	if n := ctxs[1][l.InCountOff()]; n != 0 {
		t.Errorf("stale inbox count survived delivery: %d", n)
	}
}
