// Package stream provides sequential access to deep BT-memory regions
// at block-transfer cost: a Reader (Writer) moves data between a region
// and the top of memory through a cascade of staging buffers, so that
// the word-level operations the caller performs all happen at O(1)
// addresses while every deep access is a pipelined block transfer.
//
// The cascade geometry mirrors the COMPUTE recursion of Section 5.2.1:
// stage j+1 buffers are c_{j+1} ≈ f(extent of stage j+2)-words long, so
// each inter-stage transfer of c_j words costs f(c_{j+1}·const) + c_j =
// O(c_j), making the amortised per-word streaming cost O(depth) =
// O(f*(region size)) — the Fact 2 touching bound, which is optimal.
//
// The btsim message-delivery phases (extraction, inbox merge) are built
// from these primitives.
package stream

import (
	"fmt"

	"repro/internal/bt"
	"repro/internal/cost"
)

// minChunk is the innermost stage size in words; stage-0 word accesses
// therefore touch only a constant prefix of memory.
const minChunk = 32

// Geometry fixes a cascade's chunk sizes and buffer offsets. The
// innermost (stage-0) buffer lives in a caller-provided HOT region that
// must sit at O(1) absolute addresses — its words are touched
// individually, so its address bounds the per-word streaming cost. The
// outer stages live in a separate COLD region reached only by block
// transfer, which can sit anywhere near the top.
type Geometry struct {
	chunk []int64 // chunk[0] innermost
	base  []int64 // base[j], j >= 1: buffer offset within the cold region
	total int64   // cold-region words
}

// NewGeometry plans a cascade for streaming regions of up to words
// words under access function f. The innermost chunk is constant; each
// outer chunk is ≈ f(8·inner extent) so transfers amortise.
func NewGeometry(f cost.Func, words int64) *Geometry {
	var desc []int64
	c := int64(f.Cost(2 * words))
	for c > minChunk {
		desc = append(desc, c)
		// Shrink at least geometrically: the theory only needs
		// c_j >= f(extent_{j+1}) for refills to amortise, and halving
		// keeps the stage count logarithmic instead of following f's
		// slow convergence toward its (constant) fixpoint.
		next := int64(f.Cost(8 * c))
		if next > c/2 {
			next = c / 2
		}
		c = next
	}
	desc = append(desc, minChunk)
	g := &Geometry{chunk: make([]int64, len(desc)), base: make([]int64, len(desc))}
	off := int64(0)
	for i := range desc {
		g.chunk[i] = desc[len(desc)-1-i]
		if i > 0 {
			g.base[i] = off
			off += g.chunk[i]
		}
	}
	g.total = off
	return g
}

// ColdWords returns the cold-region footprint of one cascade (outer
// stage buffers).
func (g *Geometry) ColdWords() int64 { return g.total }

// HotWords returns the hot-region footprint of one cascade (the
// innermost buffer).
func (g *Geometry) HotWords() int64 { return minChunk }

// bufAddr returns the absolute address of stage j's buffer given the
// hot and cold region offsets.
func (g *Geometry) bufAddr(j int, hot, cold int64) int64 {
	if j == 0 {
		return hot
	}
	return cold + g.base[j]
}

// Stages returns the cascade depth.
func (g *Geometry) Stages() int { return len(g.chunk) }

// Reader streams the region [off, off+words) of m sequentially. Word
// reads via Peek/Next touch only the innermost buffer; refills are
// block transfers.
type Reader struct {
	m     *bt.Machine
	g     *Geometry
	hot   int64 // stage-0 buffer address (must be O(1))
	cold  int64 // outer-stage buffer region
	off   int64 // next region word to pull into the cascade
	left  int64 // region words not yet pulled
	pos   []int64
	cnt   []int64
	done  int64 // words consumed by the caller
	total int64
}

// NewReader opens a reader over [off, off+words) with the stage-0
// buffer at [hot, hot+g.HotWords()) — which must be at O(1) addresses —
// and outer stages at [cold, cold+g.ColdWords()). All three regions
// must be disjoint.
func NewReader(m *bt.Machine, g *Geometry, hot, cold, off, words int64) *Reader {
	if words < 0 {
		panic(fmt.Sprintf("stream: negative region size %d", words))
	}
	K := len(g.chunk)
	return &Reader{m: m, g: g, hot: hot, cold: cold, off: off, left: words,
		pos: make([]int64, K), cnt: make([]int64, K), total: words}
}

// More reports whether unread words remain.
func (r *Reader) More() bool { return r.done < r.total }

// Consumed returns the words read so far.
func (r *Reader) Consumed() int64 { return r.done }

// refill ensures stage j holds at least one word; false when exhausted.
func (r *Reader) refill(j int) bool {
	if r.pos[j] < r.cnt[j] {
		return true
	}
	g := r.g
	dst := g.bufAddr(j, r.hot, r.cold)
	if j == len(g.chunk)-1 {
		if r.left == 0 {
			return false
		}
		n := min64(g.chunk[j], r.left)
		r.m.CopyRange(r.off, dst, n)
		r.off += n
		r.left -= n
		r.pos[j], r.cnt[j] = 0, n
		return true
	}
	if !r.refill(j + 1) {
		return false
	}
	up := g.bufAddr(j+1, r.hot, r.cold)
	n := min64(g.chunk[j], r.cnt[j+1]-r.pos[j+1])
	r.m.CopyRange(up+r.pos[j+1], dst, n)
	r.pos[j+1] += n
	r.pos[j], r.cnt[j] = 0, n
	return true
}

// Peek returns the next word without consuming it. It panics when the
// stream is exhausted.
func (r *Reader) Peek() int64 {
	if !r.More() {
		panic("stream: Peek past end")
	}
	if !r.refill(0) {
		panic("stream: refill failed with words remaining")
	}
	return r.m.Read(r.hot + r.pos[0])
}

// Next consumes and returns the next word.
func (r *Reader) Next() int64 {
	w := r.Peek()
	r.pos[0]++
	r.done++
	return w
}

// Writer streams words sequentially into the region [off, off+capacity)
// of m: Put touches only the innermost buffer; flushes are block
// transfers. Close must be called to drain the cascade.
type Writer struct {
	m    *bt.Machine
	g    *Geometry
	hot  int64
	cold int64
	off  int64 // next region word to be written by the outermost flush
	cap  int64
	cnt  []int64
	put  int64
}

// NewWriter opens a writer over [off, off+capacity) with the stage-0
// buffer at hot (O(1) addresses) and outer stages at cold; the regions
// must be disjoint from each other and from any other cascade.
func NewWriter(m *bt.Machine, g *Geometry, hot, cold, off, capacity int64) *Writer {
	return &Writer{m: m, g: g, hot: hot, cold: cold, off: off, cap: capacity,
		cnt: make([]int64, len(g.chunk))}
}

// Written returns the words accepted so far.
func (w *Writer) Written() int64 { return w.put }

// flush pushes stage j's buffer outward (to stage j+1, or the region).
func (w *Writer) flush(j int) {
	if w.cnt[j] == 0 {
		return
	}
	g := w.g
	src := g.bufAddr(j, w.hot, w.cold)
	if j == len(g.chunk)-1 {
		w.m.CopyRange(src, w.off, w.cnt[j])
		w.off += w.cnt[j]
	} else {
		if w.cnt[j+1]+w.cnt[j] > g.chunk[j+1] {
			w.flush(j + 1)
		}
		up := g.bufAddr(j+1, w.hot, w.cold)
		w.m.CopyRange(src, up+w.cnt[j+1], w.cnt[j])
		w.cnt[j+1] += w.cnt[j]
	}
	w.cnt[j] = 0
}

// Put appends one word. It panics when the region capacity is exceeded.
func (w *Writer) Put(v int64) {
	if w.put >= w.cap {
		panic("stream: Put past capacity")
	}
	if w.cnt[0] == w.g.chunk[0] {
		w.flush(0)
	}
	w.m.Write(w.hot+w.cnt[0], v)
	w.cnt[0]++
	w.put++
}

// Close drains every stage to the region. The writer must not be used
// afterwards.
func (w *Writer) Close() {
	for j := range w.g.chunk {
		w.flush(j)
	}
}

// Pipe streams n words from r to w: the bulk form of
// `for i := 0; i < n; i++ { w.Put(r.Next()) }`, charging the exact same
// model cost in the exact same accumulation order. Whole runs of words
// available in the reader's stage-0 buffer move into the writer's
// stage-0 buffer as one interleaved bulk charge; refills, flushes and
// the capacity panic happen at the same points as the word loop (the
// word straddling a writer flush goes through the word-by-word path,
// because the loop charges its read before the flush transfers).
// r and w must be cascades over the same machine.
func Pipe(r *Reader, w *Writer, n int64) {
	if r.m != w.m {
		panic("stream: Pipe across machines")
	}
	for n > 0 {
		if !r.More() {
			panic("stream: Pipe past end")
		}
		if !r.refill(0) {
			panic("stream: refill failed with words remaining")
		}
		if w.put >= w.cap || w.cnt[0] == w.g.chunk[0] {
			w.Put(r.Next())
			n--
			continue
		}
		k := min64(n, r.cnt[0]-r.pos[0])
		k = min64(k, w.g.chunk[0]-w.cnt[0])
		k = min64(k, w.cap-w.put)
		r.m.StreamWords(r.hot+r.pos[0], w.hot+w.cnt[0], k)
		r.pos[0] += k
		r.done += k
		w.cnt[0] += k
		w.put += k
		n -= k
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
