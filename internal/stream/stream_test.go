package stream

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bt"
	"repro/internal/cost"
)

// build returns a machine with a region of n sequential words at off,
// leaving [0, off) for hot pages and cold workspaces: hot pages for up
// to four cascades at [0, 4·hot), cold regions after.
func build(f cost.Func, n int64) (m *bt.Machine, g *Geometry, off int64) {
	mach := bt.New(f, 8*n+8192)
	geo := NewGeometry(f, n)
	regionOff := 4*geo.HotWords() + 4*geo.ColdWords() + 64
	for i := int64(0); i < n; i++ {
		mach.Poke(regionOff+i, 1000+i)
	}
	return mach, geo, regionOff
}

// hotcold returns the hot and cold offsets for cascade slot k.
func hotcold(g *Geometry, k int64) (hot, cold int64) {
	return k * g.HotWords(), 4*g.HotWords() + k*g.ColdWords()
}

func TestReaderSequential(t *testing.T) {
	m, g, off := build(cost.Poly{Alpha: 0.5}, 1000)
	hot, cold := hotcold(g, 0)
	r := NewReader(m, g, hot, cold, off, 1000)
	for i := int64(0); i < 1000; i++ {
		if !r.More() {
			t.Fatalf("exhausted at %d", i)
		}
		if got := r.Next(); got != 1000+i {
			t.Fatalf("word %d = %d, want %d", i, got, 1000+i)
		}
	}
	if r.More() {
		t.Error("More() after end")
	}
	if r.Consumed() != 1000 {
		t.Errorf("Consumed = %d", r.Consumed())
	}
}

func TestReaderPeekIsStable(t *testing.T) {
	m, g, off := build(cost.Log{}, 100)
	hot, cold := hotcold(g, 0)
	r := NewReader(m, g, hot, cold, off, 100)
	if r.Peek() != r.Peek() || r.Peek() != 1000 {
		t.Error("Peek not stable")
	}
	r.Next()
	if r.Peek() != 1001 {
		t.Error("Peek after Next wrong")
	}
}

func TestReaderPanicsPastEnd(t *testing.T) {
	m, g, off := build(cost.Log{}, 4)
	hot, cold := hotcold(g, 0)
	r := NewReader(m, g, hot, cold, off, 4)
	for i := 0; i < 4; i++ {
		r.Next()
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic past end")
		}
	}()
	r.Next()
}

func TestReaderEmpty(t *testing.T) {
	m, g, off := build(cost.Log{}, 10)
	hot, cold := hotcold(g, 0)
	r := NewReader(m, g, hot, cold, off, 0)
	if r.More() {
		t.Error("empty reader has More()")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	m, g, off := build(cost.Poly{Alpha: 0.5}, 777)
	dst := off + 2000
	hot, cold := hotcold(g, 1)
	w := NewWriter(m, g, hot, cold, dst, 777)
	for i := int64(0); i < 777; i++ {
		w.Put(7 * i)
	}
	w.Close()
	if w.Written() != 777 {
		t.Errorf("Written = %d", w.Written())
	}
	for i := int64(0); i < 777; i++ {
		if got := m.Peek(dst + i); got != 7*i {
			t.Fatalf("dst[%d] = %d, want %d", i, got, 7*i)
		}
	}
}

func TestWriterCapacityPanic(t *testing.T) {
	m, g, off := build(cost.Log{}, 10)
	hot, cold := hotcold(g, 0)
	w := NewWriter(m, g, hot, cold, off, 2)
	w.Put(1)
	w.Put(2)
	defer func() {
		if recover() == nil {
			t.Error("no panic past capacity")
		}
	}()
	w.Put(3)
}

// Read-modify-write over the same region: the writer trails the reader,
// so in-place transformation is safe.
func TestInPlaceTransform(t *testing.T) {
	n := int64(5000)
	m, g, off := build(cost.Poly{Alpha: 0.5}, n)
	rh, rc := hotcold(g, 0)
	wh, wc := hotcold(g, 1)
	r := NewReader(m, g, rh, rc, off, n)
	w := NewWriter(m, g, wh, wc, off, n)
	for r.More() {
		w.Put(r.Next() * 2)
	}
	w.Close()
	for i := int64(0); i < n; i++ {
		if got := m.Peek(off + i); got != 2*(1000+i) {
			t.Fatalf("in-place transform wrong at %d: %d", i, got)
		}
	}
}

// Streaming must beat word-at-a-time access for steep f: cost O(n·f*(n))
// vs Θ(n·f(n)).
func TestStreamingCostShape(t *testing.T) {
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		var lo, hi = math.Inf(1), 0.0
		for _, n := range []int64{1 << 10, 1 << 14, 1 << 17} {
			m, g, off := build(f, n)
			m.ResetStats()
			hot, cold := hotcold(g, 0)
			r := NewReader(m, g, hot, cold, off, n)
			for r.More() {
				r.Next()
			}
			perWord := m.Cost() / float64(n)
			ratio := perWord / float64(cost.FStar(f, n))
			if ratio < lo {
				lo = ratio
			}
			if ratio > hi {
				hi = ratio
			}
		}
		if hi/lo > 4 {
			t.Errorf("%s: streaming cost per word drifts beyond f*: lo=%g hi=%g", f.Name(), lo, hi)
		}
		// And it must be far below f(n) per word.
		n := int64(1 << 17)
		m, g, off := build(f, n)
		m.ResetStats()
		hot2, cold2 := hotcold(g, 0)
		r := NewReader(m, g, hot2, cold2, off, n)
		for r.More() {
			r.Next()
		}
		if m.Cost() > float64(n)*f.Cost(n)/3 {
			t.Errorf("%s: streaming (%g) not clearly below word-at-a-time (%g)",
				f.Name(), m.Cost(), float64(n)*f.Cost(n))
		}
	}
}

func TestGeometryShape(t *testing.T) {
	g := NewGeometry(cost.Poly{Alpha: 0.5}, 1<<20)
	if g.Stages() < 2 {
		t.Errorf("expected multi-stage cascade, got %d", g.Stages())
	}
	for j := 1; j < len(g.chunk); j++ {
		if g.chunk[j] <= g.chunk[j-1] {
			t.Errorf("chunks not increasing: %v", g.chunk)
		}
	}
	if g.ColdWords() > 8*int64(cost.Poly{Alpha: 0.5}.Cost(1<<21)) {
		t.Errorf("workspace too large: %d", g.ColdWords())
	}
	if g.HotWords() != minChunk {
		t.Errorf("HotWords = %d, want %d", g.HotWords(), minChunk)
	}
}

func TestReaderWriterProperty(t *testing.T) {
	prop := func(vals []int32) bool {
		n := int64(len(vals))
		m := bt.New(cost.Log{}, 4*n+2048)
		g := NewGeometry(cost.Log{}, n)
		off := 2*g.HotWords() + 2*g.ColdWords() + 16
		wh, wc := hotcold2(g, 0)
		w := NewWriter(m, g, wh, wc, off, n)
		for _, v := range vals {
			w.Put(int64(v))
		}
		w.Close()
		rh, rc := hotcold2(g, 1)
		r := NewReader(m, g, rh, rc, off, n)
		for _, v := range vals {
			if r.Next() != int64(v) {
				return false
			}
		}
		return !r.More()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// hotcold2 lays out two cascades: hots first, colds after.
func hotcold2(g *Geometry, k int64) (hot, cold int64) {
	return k * g.HotWords(), 2*g.HotWords() + k*g.ColdWords()
}
