package stream

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bt"
	"repro/internal/cost"
)

// build returns a machine with a region of n sequential words at off,
// leaving [0, off) for hot pages and cold workspaces: hot pages for up
// to four cascades at [0, 4·hot), cold regions after.
func build(f cost.Func, n int64) (m *bt.Machine, g *Geometry, off int64) {
	mach := bt.New(f, 8*n+8192)
	geo := NewGeometry(f, n)
	regionOff := 4*geo.HotWords() + 4*geo.ColdWords() + 64
	for i := int64(0); i < n; i++ {
		mach.Poke(regionOff+i, 1000+i)
	}
	return mach, geo, regionOff
}

// hotcold returns the hot and cold offsets for cascade slot k.
func hotcold(g *Geometry, k int64) (hot, cold int64) {
	return k * g.HotWords(), 4*g.HotWords() + k*g.ColdWords()
}

func TestReaderSequential(t *testing.T) {
	m, g, off := build(cost.Poly{Alpha: 0.5}, 1000)
	hot, cold := hotcold(g, 0)
	r := NewReader(m, g, hot, cold, off, 1000)
	for i := int64(0); i < 1000; i++ {
		if !r.More() {
			t.Fatalf("exhausted at %d", i)
		}
		if got := r.Next(); got != 1000+i {
			t.Fatalf("word %d = %d, want %d", i, got, 1000+i)
		}
	}
	if r.More() {
		t.Error("More() after end")
	}
	if r.Consumed() != 1000 {
		t.Errorf("Consumed = %d", r.Consumed())
	}
}

func TestReaderPeekIsStable(t *testing.T) {
	m, g, off := build(cost.Log{}, 100)
	hot, cold := hotcold(g, 0)
	r := NewReader(m, g, hot, cold, off, 100)
	if r.Peek() != r.Peek() || r.Peek() != 1000 {
		t.Error("Peek not stable")
	}
	r.Next()
	if r.Peek() != 1001 {
		t.Error("Peek after Next wrong")
	}
}

func TestReaderPanicsPastEnd(t *testing.T) {
	m, g, off := build(cost.Log{}, 4)
	hot, cold := hotcold(g, 0)
	r := NewReader(m, g, hot, cold, off, 4)
	for i := 0; i < 4; i++ {
		r.Next()
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic past end")
		}
	}()
	r.Next()
}

func TestReaderEmpty(t *testing.T) {
	m, g, off := build(cost.Log{}, 10)
	hot, cold := hotcold(g, 0)
	r := NewReader(m, g, hot, cold, off, 0)
	if r.More() {
		t.Error("empty reader has More()")
	}
}

func TestWriterRoundTrip(t *testing.T) {
	m, g, off := build(cost.Poly{Alpha: 0.5}, 777)
	dst := off + 2000
	hot, cold := hotcold(g, 1)
	w := NewWriter(m, g, hot, cold, dst, 777)
	for i := int64(0); i < 777; i++ {
		w.Put(7 * i)
	}
	w.Close()
	if w.Written() != 777 {
		t.Errorf("Written = %d", w.Written())
	}
	for i := int64(0); i < 777; i++ {
		if got := m.Peek(dst + i); got != 7*i {
			t.Fatalf("dst[%d] = %d, want %d", i, got, 7*i)
		}
	}
}

func TestWriterCapacityPanic(t *testing.T) {
	m, g, off := build(cost.Log{}, 10)
	hot, cold := hotcold(g, 0)
	w := NewWriter(m, g, hot, cold, off, 2)
	w.Put(1)
	w.Put(2)
	defer func() {
		if recover() == nil {
			t.Error("no panic past capacity")
		}
	}()
	w.Put(3)
}

// Read-modify-write over the same region: the writer trails the reader,
// so in-place transformation is safe.
func TestInPlaceTransform(t *testing.T) {
	n := int64(5000)
	m, g, off := build(cost.Poly{Alpha: 0.5}, n)
	rh, rc := hotcold(g, 0)
	wh, wc := hotcold(g, 1)
	r := NewReader(m, g, rh, rc, off, n)
	w := NewWriter(m, g, wh, wc, off, n)
	for r.More() {
		w.Put(r.Next() * 2)
	}
	w.Close()
	for i := int64(0); i < n; i++ {
		if got := m.Peek(off + i); got != 2*(1000+i) {
			t.Fatalf("in-place transform wrong at %d: %d", i, got)
		}
	}
}

// Streaming must beat word-at-a-time access for steep f: cost O(n·f*(n))
// vs Θ(n·f(n)).
func TestStreamingCostShape(t *testing.T) {
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		var lo, hi = math.Inf(1), 0.0
		for _, n := range []int64{1 << 10, 1 << 14, 1 << 17} {
			m, g, off := build(f, n)
			m.ResetStats()
			hot, cold := hotcold(g, 0)
			r := NewReader(m, g, hot, cold, off, n)
			for r.More() {
				r.Next()
			}
			perWord := m.Cost() / float64(n)
			ratio := perWord / float64(cost.FStar(f, n))
			if ratio < lo {
				lo = ratio
			}
			if ratio > hi {
				hi = ratio
			}
		}
		if hi/lo > 4 {
			t.Errorf("%s: streaming cost per word drifts beyond f*: lo=%g hi=%g", f.Name(), lo, hi)
		}
		// And it must be far below f(n) per word.
		n := int64(1 << 17)
		m, g, off := build(f, n)
		m.ResetStats()
		hot2, cold2 := hotcold(g, 0)
		r := NewReader(m, g, hot2, cold2, off, n)
		for r.More() {
			r.Next()
		}
		if m.Cost() > float64(n)*f.Cost(n)/3 {
			t.Errorf("%s: streaming (%g) not clearly below word-at-a-time (%g)",
				f.Name(), m.Cost(), float64(n)*f.Cost(n))
		}
	}
}

func TestGeometryShape(t *testing.T) {
	g := NewGeometry(cost.Poly{Alpha: 0.5}, 1<<20)
	if g.Stages() < 2 {
		t.Errorf("expected multi-stage cascade, got %d", g.Stages())
	}
	for j := 1; j < len(g.chunk); j++ {
		if g.chunk[j] <= g.chunk[j-1] {
			t.Errorf("chunks not increasing: %v", g.chunk)
		}
	}
	if g.ColdWords() > 8*int64(cost.Poly{Alpha: 0.5}.Cost(1<<21)) {
		t.Errorf("workspace too large: %d", g.ColdWords())
	}
	if g.HotWords() != minChunk {
		t.Errorf("HotWords = %d, want %d", g.HotWords(), minChunk)
	}
}

func TestReaderWriterProperty(t *testing.T) {
	prop := func(vals []int32) bool {
		n := int64(len(vals))
		m := bt.New(cost.Log{}, 4*n+2048)
		g := NewGeometry(cost.Log{}, n)
		off := 2*g.HotWords() + 2*g.ColdWords() + 16
		wh, wc := hotcold2(g, 0)
		w := NewWriter(m, g, wh, wc, off, n)
		for _, v := range vals {
			w.Put(int64(v))
		}
		w.Close()
		rh, rc := hotcold2(g, 1)
		r := NewReader(m, g, rh, rc, off, n)
		for _, v := range vals {
			if r.Next() != int64(v) {
				return false
			}
		}
		return !r.More()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// hotcold2 lays out two cascades: hots first, colds after.
func hotcold2(g *Geometry, k int64) (hot, cold int64) {
	return k * g.HotWords(), 2*g.HotWords() + k*g.ColdWords()
}

// Pipe must charge the exact model cost of the word loop it replaces,
// bit for bit and in the same accumulation order — piping between two
// regions on identical machines must leave identical cost bits, stats
// and memory. Mixed word/bulk interleavings exercise the flush/refill
// boundary words.
func TestPipeMatchesWordLoopBitIdentical(t *testing.T) {
	for _, f := range []cost.Func{cost.Poly{Alpha: 0.5}, cost.Log{}} {
		for _, n := range []int64{1, 31, 32, 33, 100, 1000} {
			mA, g, off := build(f, 2000)
			mB, _, _ := build(f, 2000)
			dst := off + 1000

			hotR, coldR := hotcold(g, 0)
			hotW, coldW := hotcold(g, 1)
			rA := NewReader(mA, g, hotR, coldR, off, n)
			wA := NewWriter(mA, g, hotW, coldW, dst, n)
			rB := NewReader(mB, g, hotR, coldR, off, n)
			wB := NewWriter(mB, g, hotW, coldW, dst, n)

			for i := int64(0); i < n; i++ {
				wA.Put(rA.Next())
			}
			wA.Close()
			Pipe(rB, wB, n)
			wB.Close()

			ca, cb := mA.Cost(), mB.Cost()
			if math.Float64bits(ca) != math.Float64bits(cb) {
				t.Fatalf("%s n=%d: word-loop cost %v != Pipe cost %v", f.Name(), n, ca, cb)
			}
			if mA.Stats() != mB.Stats() {
				t.Fatalf("%s n=%d: stats diverged:\nword: %+v\npipe: %+v",
					f.Name(), n, mA.Stats(), mB.Stats())
			}
			for i := int64(0); i < n; i++ {
				if mA.Peek(dst+i) != mB.Peek(dst+i) {
					t.Fatalf("%s n=%d: word %d diverged", f.Name(), n, i)
				}
			}
		}
	}
}

// A Pipe interleaved with word-level Next/Put (as the btsim delivery
// scans do around special offsets) must also match.
func TestPipeInterleavedWithWords(t *testing.T) {
	f := cost.Poly{Alpha: 0.5}
	const n = 500
	mA, g, off := build(f, 2*n)
	mB, _, _ := build(f, 2*n)
	dst := off + n

	hotR, coldR := hotcold(g, 0)
	hotW, coldW := hotcold(g, 1)
	rA := NewReader(mA, g, hotR, coldR, off, n)
	wA := NewWriter(mA, g, hotW, coldW, dst, n)
	rB := NewReader(mB, g, hotR, coldR, off, n)
	wB := NewWriter(mB, g, hotW, coldW, dst, n)

	// A: all word-level. B: words at the "special" offsets, pipes between.
	for i := int64(0); i < n; i++ {
		wA.Put(rA.Next())
	}
	wA.Close()
	segs := []int64{7, 100, 1, 250, n - 7 - 100 - 1 - 250 - 5}
	for _, seg := range segs {
		Pipe(rB, wB, seg)
		wB.Put(rB.Next()) // special word
	}
	if rB.More() {
		Pipe(rB, wB, n-rB.Consumed())
	}
	wB.Close()

	if math.Float64bits(mA.Cost()) != math.Float64bits(mB.Cost()) {
		t.Fatalf("interleaved: word-loop cost %v != piped cost %v", mA.Cost(), mB.Cost())
	}
	for i := int64(0); i < n; i++ {
		if mA.Peek(dst+i) != mB.Peek(dst+i) {
			t.Fatalf("interleaved: word %d diverged", i)
		}
	}
}

// Pipe across two different machines is a caller bug.
func TestPipeAcrossMachinesPanics(t *testing.T) {
	f := cost.Log{}
	mA, g, off := build(f, 100)
	mB, _, _ := build(f, 100)
	hotR, coldR := hotcold(g, 0)
	hotW, coldW := hotcold(g, 1)
	r := NewReader(mA, g, hotR, coldR, off, 10)
	w := NewWriter(mB, g, hotW, coldW, off, 10)
	defer func() {
		if recover() == nil {
			t.Error("Pipe across machines did not panic")
		}
	}()
	Pipe(r, w, 10)
}
